"""Network fabric, epoch fencing, and history-checker tests
(docs/FAULT_MODEL.md §7): partitions and gray failures as seeded
first-class inputs, stale-primary writes rejected with FencedError, and
Jepsen-style per-key linearizability checking under the nemesis."""

import math

import pytest

from repro.cluster import (
    CONTROL_PLANE,
    ClusterConfig,
    ClusterStore,
    FencedError,
    NetConfig,
    NetworkFabric,
    SHARD_ACTIVE,
)
from repro.faults import (
    HistoryOp,
    HistoryRecorder,
    NemesisConfig,
    check_history,
    nemesis_chaos,
)
from repro.lsm import LSMEngine, Options
from repro.sim import Environment

KB = 1 << 10


def cluster_options(**overrides):
    base = dict(memtable_size=256 * KB, sstable_size=64 * KB,
                level1_max_bytes=256 * KB, wal_sync=True)
    base.update(overrides)
    return Options(**base)


def make_net_cluster(num_shards=1, replicas=1, net=None, env=None,
                     **config_overrides):
    env = env or Environment()
    config = ClusterConfig(num_shards=num_shards,
                           replicas_per_shard=replicas,
                           replication_lag=0.001,
                           heartbeat_interval=0.002,
                           page_cache_bytes=256 * KB,
                           net=net or NetConfig(),
                           **config_overrides)
    cluster = ClusterStore(env, LSMEngine, cluster_options(), config)
    return env, cluster


def advance(env, seconds):
    """Run the simulation forward by ``seconds`` of virtual time."""

    def waiter():
        yield env.timeout(seconds)

    env.run_until(env.process(waiter(), name="advance"))


class TestNetConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            NetConfig(delay=-1.0)
        with pytest.raises(ValueError):
            NetConfig(loss=1.0)
        with pytest.raises(ValueError):
            NetConfig(duplicate=1.5)

    def test_defaults_are_valid(self):
        config = NetConfig()
        assert config.delay > 0 and config.loss == 0.0


class TestNetworkFabric:
    def test_partition_refuses_and_heal_restores(self):
        fabric = NetworkFabric(Environment())
        assert fabric.reachable("a", "b")
        fabric.partition(["a"], ["b"])
        assert not fabric.reachable("a", "b")
        assert not fabric.reachable("b", "a")  # symmetric by default
        assert fabric.try_send("a", "b") is None
        assert fabric.counters["sends_refused"] == 1
        healed = []
        fabric.on_heal(lambda: healed.append(True))
        fabric.heal()
        assert healed == [True]
        assert fabric.reachable("a", "b")
        assert fabric.try_send("a", "b") is not None

    def test_asymmetric_cut_blocks_one_direction(self):
        fabric = NetworkFabric(Environment())
        fabric.partition(["ctl"], ["p"], symmetric=False)
        assert not fabric.reachable("ctl", "p")
        assert fabric.reachable("p", "ctl")
        # A probe needs both directions, so the gray failure loses it.
        assert fabric.probe("ctl", "p") is None
        assert fabric.counters["probes_lost"] == 1

    def test_delay_draws_are_seeded_deterministic(self):
        config = NetConfig(loss=0.1, duplicate=0.2, reorder=0.0005, seed=5)
        first = NetworkFabric(Environment(), config)
        second = NetworkFabric(Environment(), config)
        assert [first.try_send("a", "b") for _ in range(50)] == \
            [second.try_send("a", "b") for _ in range(50)]
        assert first.counters == second.counters

    def test_loss_inflates_delay_instead_of_dropping(self):
        lossy = NetworkFabric(Environment(), NetConfig(loss=0.5, jitter=0.0,
                                                       seed=3))
        delays = [lossy.try_send("a", "b") for _ in range(200)]
        assert all(delay is not None for delay in delays)  # never dropped
        assert lossy.counters["retransmits"] > 0
        config = lossy.config
        assert max(delays) <= config.delay + 8 * config.rto + 1e-12

    def test_backoff_is_exponential_jittered_and_capped(self):
        fabric = NetworkFabric(Environment(), NetConfig(seed=7))
        for attempt in range(1, 12):
            base = min(0.05, 0.001 * (2 ** (attempt - 1)))
            value = fabric.backoff(attempt, 0.001, 0.05)
            assert 0.5 * base <= value <= 1.5 * base

    def test_probe_round_trip_and_snapshot(self):
        fabric = NetworkFabric(Environment(), NetConfig(jitter=0.0))
        rtt = fabric.probe("ctl", "p")
        assert rtt == pytest.approx(2 * fabric.config.delay)
        snap = fabric.snapshot()
        assert snap["probes"] == 1
        assert snap["active_cuts"] == 0


class TestFabricReplication:
    def test_replicas_converge_over_faulty_fabric(self):
        net = NetConfig(delay=0.0003, loss=0.05, duplicate=0.1,
                        reorder=0.0008, seed=13)
        env, cluster = make_net_cluster(num_shards=2, replicas=1, net=net)
        for i in range(80):
            cluster.put_sync(b"net%04d" % i, b"x" * 24)
        advance(env, 0.1)
        for shard in cluster.shards:
            primary_seq = shard.primary.db.versions.last_sequence
            for replica in shard.replicas:
                assert replica.applied_primary_seq == primary_seq
            assert shard.replication.outstanding == 0
        snap = cluster.fabric.snapshot()
        assert snap["messages_accepted"] > 0
        assert snap["duplicates"] > 0  # injected AND survived resequencing
        cluster.close_sync()

    def test_fabric_run_is_deterministic(self):
        def run():
            net = NetConfig(loss=0.05, duplicate=0.1, reorder=0.0008,
                            seed=13)
            env, cluster = make_net_cluster(num_shards=1, replicas=1,
                                            net=net)
            for i in range(50):
                cluster.put_sync(b"det%04d" % i, b"d" * 16)
            advance(env, 0.05)
            snap = cluster.fabric.snapshot()
            seq = cluster.shards[0].primary.db.versions.last_sequence
            cluster.close_sync()
            return snap, seq, env.now

        assert run() == run()

    def test_sever_drops_wire_in_flight_records(self):
        # Large delay: the accepted record is still on the wire when the
        # primary dies.  It must be dropped with the connection, not
        # delivered late into the promoted replica set.
        net = NetConfig(delay=0.05, jitter=0.0, seed=17)
        # probe_timeout >> RTT: a slow wire is not a gray primary here.
        env, cluster = make_net_cluster(num_shards=1, replicas=1, net=net,
                                        probe_timeout=0.5)
        shard = cluster.shards[0]
        cluster.put_sync(b"wire-key", b"v1")
        link = shard.replication.links[0]
        assert link.outstanding > 0  # accepted, still in flight
        shard.kill_primary()
        advance(env, 0.5)
        assert shard.state == SHARD_ACTIVE
        assert link.records_applied == 0
        assert link.outstanding == 0
        assert shard.wal_tail_records_replayed > 0
        assert cluster.get_sync(b"wire-key") == b"v1"
        cluster.close_sync()


class TestEpochFencing:
    def test_dead_primary_failover_bumps_epoch(self):
        env, cluster = make_net_cluster(num_shards=1, replicas=1)
        shard = cluster.shards[0]
        cluster.put_sync(b"k", b"v")
        assert shard.epoch == 1
        shard.kill_primary()
        advance(env, 0.5)
        assert shard.epoch == 2
        assert shard.primary.epoch == 2
        cluster.close_sync()

    def test_partitioned_primary_is_fenced_not_killed(self):
        env, cluster = make_net_cluster(num_shards=1, replicas=1,
                                        grace_misses=2)
        shard = cluster.shards[0]
        for i in range(20):
            cluster.put_sync(b"pf%04d" % i, b"p" * 16)
        advance(env, 0.05)
        old_primary = shard.primary
        acked_seq = old_primary.db.versions.last_sequence

        # Stage 1: cut only the replication edges, then launch writes —
        # their ships deterministically enter the refusal/backoff loop.
        cluster.fabric.partition(
            [old_primary.node_id],
            [replica.node_id for replica in shard.replicas])
        for j in range(3):
            env.process(cluster.put(b"late%04d" % j, b"l" * 16),
                        name=f"late-{j}")
        # Stage 2: complete the isolation (control plane included).
        advance(env, 0.004)
        cluster.partition_primary(0)
        advance(env, 0.3)

        # Promotion, not death: the victim still runs, fenced out.
        assert shard.state == SHARD_ACTIVE
        assert shard.primary is not old_primary
        assert shard.epoch == 2
        assert shard.failovers == 1
        assert shard.partition_promotions == 1
        assert old_primary.alive and old_primary.fenced
        assert old_primary in shard.fenced_nodes
        # The late writes' retries hit the epoch fence.
        assert shard.fenced_writes > 0
        # No tail replay happened (the disk is across the cut)...
        assert shard.wal_tail_records_replayed == 0
        # ...yet no acked write was lost: the drain covered them all.
        assert shard.primary.db.versions.last_sequence >= acked_seq

        cluster.heal_network()
        advance(env, 0.1)
        for i in range(20):
            assert cluster.get_sync(b"pf%04d" % i) == b"p" * 16
        # The fenced-away writes were never acked; after healing their
        # park-don't-fail retries landed on the new primary.
        for j in range(3):
            assert cluster.get_sync(b"late%04d" % j) == b"l" * 16
        cluster.close_sync()

    def test_fence_check_raises_typed_error(self):
        env, cluster = make_net_cluster(num_shards=1, replicas=1)
        shard = cluster.shards[0]
        cluster.put_sync(b"k", b"v")
        link = shard.replication.links[0]
        shard.epoch += 1  # simulate a promotion elsewhere
        with pytest.raises(FencedError):
            link._check_fence(5, 7)
        assert shard.fenced_writes == 3  # 5..7 inclusive
        shard.epoch -= 1
        cluster.close_sync()

    def test_grace_window_tolerates_isolated_probe_misses(self):
        # loss=0 and no partition: probes always succeed, no failover.
        env, cluster = make_net_cluster(num_shards=1, replicas=1,
                                        grace_misses=3)
        cluster.put_sync(b"k", b"v")
        advance(env, 0.2)
        assert cluster.shards[0].failovers == 0
        # An asymmetric control-plane cut shorter than the grace window
        # must not trigger a promotion either.
        cluster.fabric.partition([CONTROL_PLANE],
                                 [cluster.shards[0].primary.node_id],
                                 symmetric=False)
        advance(env, 0.003)  # one heartbeat: one miss < grace_misses
        cluster.heal_network()
        advance(env, 0.2)
        assert cluster.shards[0].failovers == 0
        assert cluster.fabric.counters["probes_lost"] > 0
        cluster.close_sync()


def _op(client, op_id, kind, key, value, invoked, completed,
        outcome="ok"):
    return HistoryOp(client=client, op_id=op_id, kind=kind, key=key,
                     value=value, invoked=invoked, completed=completed,
                     outcome=outcome)


class TestHistoryChecker:
    def test_clean_history_passes(self):
        ops = [
            _op(1, 0, "w", b"k", b"v1", 0.0, 1.0),
            _op(1, 1, "r", b"k", b"v1", 2.0, 3.0),
            _op(2, 2, "w", b"k", b"v2", 4.0, 5.0),
            _op(2, 3, "r", b"k", b"v2", 6.0, 7.0),
        ]
        assert check_history(ops) == []

    def test_concurrent_reads_allow_either_value(self):
        write = _op(1, 0, "w", b"k", b"v1", 0.0, 5.0)
        assert check_history([write,
                              _op(2, 1, "r", b"k", None, 1.0, 2.0)]) == []
        assert check_history([write,
                              _op(2, 1, "r", b"k", b"v1", 1.0, 2.0)]) == []

    def test_lost_acked_write_is_reported(self):
        ops = [
            _op(1, 0, "w", b"k", b"v1", 0.0, 1.0),
            _op(2, 1, "r", b"k", None, 2.0, 3.0),
        ]
        violations = check_history(ops)
        assert len(violations) == 1 and "lost update" in violations[0]

    def test_phantom_value_is_reported(self):
        ops = [_op(1, 0, "r", b"k", b"never-written", 0.0, 1.0)]
        violations = check_history(ops)
        assert len(violations) == 1 and "phantom" in violations[0]

    def test_fenced_write_must_stay_invisible(self):
        ops = [
            _op(1, 0, "w", b"k", b"doomed", 0.0, 1.0, outcome="fail"),
            _op(2, 1, "r", b"k", b"doomed", 2.0, 3.0),
        ]
        violations = check_history(ops)
        assert len(violations) == 1 and "fenced" in violations[0]

    def test_stale_read_is_reported(self):
        ops = [
            _op(1, 0, "w", b"k", b"v1", 0.0, 1.0),
            _op(1, 1, "w", b"k", b"v2", 2.0, 3.0),
            _op(2, 2, "r", b"k", b"v1", 4.0, 5.0),
        ]
        violations = check_history(ops)
        assert len(violations) == 1 and "stale" in violations[0]

    def test_session_regression_is_reported(self):
        ops = [
            _op(1, 0, "w", b"k", b"v1", 0.0, 1.0),
            _op(1, 1, "w", b"k", b"v2", 2.0, 3.0),
            _op(2, 2, "r", b"k", b"v2", 4.0, 5.0),
            _op(2, 3, "r", b"k", b"v1", 6.0, 7.0),
        ]
        assert any("S1 session regression" in violation
                   for violation in check_history(ops))

    def test_indeterminate_write_may_or_may_not_appear(self):
        maybe = _op(1, 0, "w", b"k", b"v1", 0.0, math.inf, outcome="info")
        assert check_history([maybe,
                              _op(2, 1, "r", b"k", b"v1", 1.0, 2.0)]) == []
        assert check_history([maybe,
                              _op(2, 1, "r", b"k", None, 1.0, 2.0)]) == []

    def test_recorder_intervals_use_virtual_time(self):
        env = Environment()
        recorder = HistoryRecorder(env)

        def driver():
            op = recorder.invoke(1, "w", b"k", b"v")
            yield env.timeout(0.25)
            recorder.ok(op)

        env.run_until(env.process(driver(), name="drive"))
        op = recorder.ops[0]
        assert op.invoked == 0.0
        assert op.completed == pytest.approx(0.25)
        assert op.ok


class TestNemesis:
    def test_nemesis_fences_and_history_is_clean(self):
        result = nemesis_chaos(NemesisConfig())
        assert result.ok, "\n".join(result.summary_lines())
        assert result.partition_promotions >= 1
        assert result.fenced_writes > 0
        assert result.failovers >= 2  # fenced promotion + the kill
        assert result.wal_tail_records_replayed > 0
        assert result.failed_ops == 0
        assert result.availability == 1.0
        assert result.history_ops == result.ops
        assert result.net["partitions"] >= 2
        assert result.net["heals"] == 1

    def test_nemesis_is_deterministic(self):
        config = NemesisConfig(ops_per_client=80, seed=19)
        assert nemesis_chaos(config).summary_lines() == \
            nemesis_chaos(config).summary_lines()

    def test_nemesis_cli_twice_identical(self):
        from repro.tools.dbbench import _parser, run_benchmarks
        argv = ["--cluster", "--nemesis", "--num", "320"]

        def run_cli():
            lines = []
            run_benchmarks(_parser().parse_args(argv), out=lines.append)
            return lines

        first = run_cli()
        assert first == run_cli()
        assert first[-1] == "nemesis: PASS"
