"""Unit and property tests for binary codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.lsm.codec import (
    CorruptionError,
    crc32,
    decode_fixed32,
    decode_fixed64,
    decode_length_prefixed,
    decode_varint,
    encode_fixed32,
    encode_fixed64,
    encode_length_prefixed,
    encode_varint,
)


class TestVarint:
    @given(st.integers(min_value=0, max_value=2 ** 63 - 1))
    def test_roundtrip(self, value):
        data = encode_varint(value)
        decoded, offset = decode_varint(data)
        assert decoded == value
        assert offset == len(data)

    def test_small_values_are_one_byte(self):
        for value in (0, 1, 127):
            assert len(encode_varint(value)) == 1

    def test_boundary_sizes(self):
        assert len(encode_varint(128)) == 2
        assert len(encode_varint(16383)) == 2
        assert len(encode_varint(16384)) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_raises(self):
        data = encode_varint(300)[:1]  # continuation bit set, no next byte
        with pytest.raises(CorruptionError):
            decode_varint(data)

    def test_decode_at_offset(self):
        data = b"\xff" + encode_varint(42)
        value, offset = decode_varint(data, 1)
        assert value == 42
        assert offset == 2

    @given(st.lists(st.integers(min_value=0, max_value=2 ** 40),
                    min_size=1, max_size=20))
    def test_concatenated_stream(self, values):
        blob = b"".join(encode_varint(v) for v in values)
        decoded = []
        pos = 0
        while pos < len(blob):
            value, pos = decode_varint(blob, pos)
            decoded.append(value)
        assert decoded == values


class TestFixed:
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_fixed32_roundtrip(self, value):
        assert decode_fixed32(encode_fixed32(value)) == value

    @given(st.integers(min_value=0, max_value=2 ** 64 - 1))
    def test_fixed64_roundtrip(self, value):
        assert decode_fixed64(encode_fixed64(value)) == value

    def test_truncated_raises(self):
        with pytest.raises(CorruptionError):
            decode_fixed32(b"\x01\x02")
        with pytest.raises(CorruptionError):
            decode_fixed64(b"\x01\x02\x03\x04")


class TestLengthPrefixed:
    @given(st.binary(max_size=1000))
    def test_roundtrip(self, payload):
        data = encode_length_prefixed(payload)
        decoded, offset = decode_length_prefixed(data)
        assert decoded == payload
        assert offset == len(data)

    def test_truncated_raises(self):
        data = encode_length_prefixed(b"hello")[:-2]
        with pytest.raises(CorruptionError):
            decode_length_prefixed(data)


class TestCrc:
    def test_deterministic(self):
        assert crc32(b"abc") == crc32(b"abc")

    def test_sensitive_to_any_flip(self):
        base = crc32(b"hello world")
        assert crc32(b"hellO world") != base

    @given(st.binary(max_size=256))
    def test_always_32_bits(self, data):
        assert 0 <= crc32(data) <= 0xFFFFFFFF
