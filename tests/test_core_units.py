"""Unit tests for BoLT's building blocks in isolation."""

import pytest

from repro.core.compaction_file import CompactionFileSink, container_name
from repro.core.fd_cache import FileDescriptorCache


class TestContainerName:
    def test_format(self):
        assert container_name("db", 42) == "db/000042.cf"


class TestCompactionFileSink:
    def test_lazy_creation(self, fs, run):
        sink = CompactionFileSink(fs, "db", 7)
        assert not fs.exists("db/000007.cf")

        def scenario():
            yield from sink.seal()  # no outputs: no file, no barrier

        run(scenario())
        assert not fs.exists("db/000007.cf")
        assert fs.stats.num_barrier_calls == 0

    def test_all_tables_share_the_file(self, fs, run):
        sink = CompactionFileSink(fs, "db", 7)

        def scenario():
            handles = []
            for table_number in (100, 101, 102):
                handle, name = yield from sink.next_handle(table_number)
                handle.append(b"table-%d" % table_number)
                handles.append((handle, name))
            yield from sink.seal()
            return handles

        handles = run(scenario())
        names = {name for _h, name in handles}
        assert names == {"db/000007.cf"}
        assert sink.tables_written == 3
        assert fs.stats.num_barrier_calls == 1  # ONE fsync for all three
        assert fs.file_size("db/000007.cf") == sum(
            len(b"table-%d" % n) for n in (100, 101, 102))

    def test_seal_fsyncs_once_regardless_of_table_count(self, fs, run):
        sink = CompactionFileSink(fs, "db", 9)

        def scenario():
            for table_number in range(20):
                handle, _name = yield from sink.next_handle(table_number)
                handle.append(b"x" * 1000)
            yield from sink.seal()

        run(scenario())
        assert fs.stats.num_barrier_calls == 1


class TestFileDescriptorCache:
    def test_hit_skips_metadata_op(self, fs, device, run):
        def setup():
            yield from fs.create("db/000001.cf")

        run(setup())
        cache = FileDescriptorCache(fs, capacity=4)

        def open_twice():
            first = yield from cache.open("db/000001.cf")
            ops_after_first = device.stats.num_metadata_ops
            second = yield from cache.open("db/000001.cf")
            return first, second, ops_after_first

        first, second, ops_after_first = run(open_twice())
        assert first is second
        assert device.stats.num_metadata_ops == ops_after_first
        assert cache.hits == 1 and cache.misses == 1

    def test_capacity_evicts_lru(self, fs, run):
        def setup():
            for i in range(3):
                yield from fs.create(f"db/{i}.cf")

        run(setup())
        cache = FileDescriptorCache(fs, capacity=2)

        def scenario():
            yield from cache.open("db/0.cf")
            yield from cache.open("db/1.cf")
            yield from cache.open("db/2.cf")   # evicts 0.cf
            yield from cache.open("db/0.cf")   # miss again
            return cache.misses

        assert run(scenario()) == 4

    def test_evict(self, fs, run):
        def setup():
            yield from fs.create("db/x.cf")

        run(setup())
        cache = FileDescriptorCache(fs, capacity=4)

        def scenario():
            yield from cache.open("db/x.cf")
            yield from cache.evict("db/x.cf")
            yield from cache.open("db/x.cf")
            return cache.misses

        assert run(scenario()) == 2

    def test_hit_ratio(self, fs, run):
        def setup():
            yield from fs.create("db/y.cf")

        run(setup())
        cache = FileDescriptorCache(fs, capacity=4)

        def scenario():
            for _ in range(4):
                yield from cache.open("db/y.cf")

        run(scenario())
        assert cache.hit_ratio == pytest.approx(0.75)
