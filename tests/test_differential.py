"""Differential testing: every engine must agree on every history.

A reproduction that compares seven storage engines lives or dies on
their *semantic equivalence*: whatever their compaction policies do,
identical operation histories must yield identical read results.  These
tests run randomized histories through all engines (and a dict model)
and require bit-exact agreement — on point reads, scans, snapshot reads,
and after crash+recovery of the quiesced prefix.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BoLTEngine,
    HyperBoLTEngine,
    RocksBoLTEngine,
    bolt_options,
    hyperbolt_options,
    rocksbolt_options,
)
from repro.engines import (
    HyperLevelDBEngine,
    LevelDBEngine,
    PebblesDBEngine,
    RocksDBEngine,
    hyperleveldb_options,
    leveldb_options,
    pebblesdb_options,
    rocksdb_options,
)
from repro.sim import Environment
from repro.storage import BlockDevice, PageCache, SimFS

SCALE = 1024

ENGINES = [
    (LevelDBEngine, leveldb_options),
    (HyperLevelDBEngine, hyperleveldb_options),
    (RocksDBEngine, rocksdb_options),
    (PebblesDBEngine, pebblesdb_options),
    (BoLTEngine, bolt_options),
    (HyperBoLTEngine, hyperbolt_options),
    (RocksBoLTEngine, rocksbolt_options),
]


def generate_history(seed, n=1200, keyspace=400):
    rng = random.Random(seed)
    ops = []
    for i in range(n):
        roll = rng.random()
        key = b"user%08d" % rng.randrange(keyspace)
        if roll < 0.75:
            ops.append(("put", key, b"v%d-" % i + b"x" * rng.randrange(120)))
        elif roll < 0.9:
            ops.append(("del", key, None))
        else:
            ops.append(("flush", None, None))
    return ops


def run_history(engine_cls, factory, ops):
    env = Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    db = engine_cls.open_sync(env, fs, factory(SCALE), "db")

    def apply_all():
        for kind, key, value in ops:
            if kind == "put":
                yield from db.put(key, value)
            elif kind == "del":
                yield from db.delete(key)
            else:
                yield from db.flush_all()
        yield from db.flush_all()

    env.run_until(env.process(apply_all()))
    return env, fs, db


def model_of(ops):
    model = {}
    for kind, key, value in ops:
        if kind == "put":
            model[key] = value
        elif kind == "del":
            model.pop(key, None)
    return model


class TestAllEnginesAgree:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_point_reads_match_model(self, seed):
        ops = generate_history(seed)
        model = model_of(ops)
        keys = [b"user%08d" % i for i in range(400)]
        for engine_cls, factory in ENGINES:
            env, _fs, db = run_history(engine_cls, factory, ops)

            def verify():
                for key in keys:
                    got = yield from db.get(key)
                    assert got == model.get(key), (engine_cls.name, key)

            env.run_until(env.process(verify()))

    @pytest.mark.parametrize("seed", [7, 8])
    def test_scans_match_model(self, seed):
        ops = generate_history(seed)
        expected = sorted(model_of(ops).items())
        for engine_cls, factory in ENGINES:
            env, _fs, db = run_history(engine_cls, factory, ops)
            result = db.scan_sync(b"user", len(expected) + 10)
            assert result == expected, engine_cls.name

    @pytest.mark.parametrize("seed", [11])
    def test_recovery_matches_model(self, seed):
        ops = generate_history(seed, n=800)
        model = model_of(ops)
        for engine_cls, factory in ENGINES:
            env, fs, db = run_history(engine_cls, factory, ops)
            db.kill()
            fs.crash(survive_probability=0.0)
            db2 = engine_cls.open_sync(env, fs, factory(SCALE), "db")

            def verify():
                for key, value in model.items():
                    got = yield from db2.get(key)
                    assert got == value, (engine_cls.name, key)

            env.run_until(env.process(verify()))

    def test_snapshots_agree_across_engines(self):
        first = [("put", b"key%04d" % i, b"old") for i in range(150)]
        second = [("put", b"key%04d" % i, b"new") for i in range(150)]
        for engine_cls, factory in ENGINES:
            env, _fs, db = run_history(engine_cls, factory, first)
            snap = db.snapshot()

            def churn():
                for _kind, key, value in second:
                    yield from db.put(key, value)
                yield from db.flush_all()

            env.run_until(env.process(churn()))
            assert db.get_sync(b"key0077") == b"new", engine_cls.name
            assert db.get_sync(b"key0077", snapshot=snap) == b"old", \
                engine_cls.name
            snap.release()


class TestHypothesisDifferential:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10_000))
    def test_bolt_agrees_with_leveldb(self, seed):
        """The contribution must be a drop-in: BoLT and stock LevelDB
        return identical answers for any history."""
        ops = generate_history(seed, n=600, keyspace=150)
        keys = [b"user%08d" % i for i in range(150)]
        answers = []
        for engine_cls, factory in ((LevelDBEngine, leveldb_options),
                                    (BoLTEngine, bolt_options)):
            env, _fs, db = run_history(engine_cls, factory, ops)

            def collect():
                result = []
                for key in keys:
                    value = yield from db.get(key)
                    result.append(value)
                scan = yield from db.scan(b"user", 500)
                return result, scan

            answers.append(env.run_until(env.process(collect())))
        assert answers[0] == answers[1]
