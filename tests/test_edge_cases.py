"""Edge cases across the stack: empty structures, boundary conditions,
device parallelism, page-boundary writes."""

import pytest

from repro.lsm import LSMEngine, Options
from repro.sim import Environment
from repro.storage import (
    BlockDevice,
    NVME_SSD,
    PAGE_SIZE,
    PageCache,
    SimFS,
)

KB = 1 << 10


def small_options(**overrides):
    base = dict(memtable_size=16 * KB, sstable_size=8 * KB,
                level1_max_bytes=32 * KB)
    base.update(overrides)
    return Options(**base)


def fresh_db(options=None):
    env = Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    db = LSMEngine.open_sync(env, fs, options or small_options(), "db")
    return env, fs, db


class TestScanEdges:
    def test_scan_empty_db(self):
        _env, _fs, db = fresh_db()
        assert db.scan_sync(b"anything", 10) == []

    def test_scan_past_all_keys(self):
        _env, _fs, db = fresh_db()
        db.put_sync(b"aaa", b"1")
        assert db.scan_sync(b"zzz", 10) == []

    def test_scan_count_zero(self):
        _env, _fs, db = fresh_db()
        db.put_sync(b"k", b"v")
        assert db.scan_sync(b"a", 0) == []

    def test_scan_count_larger_than_db(self):
        _env, _fs, db = fresh_db()
        for i in range(5):
            db.put_sync(b"k%d" % i, b"v")
        assert len(db.scan_sync(b"", 1000)) == 5

    def test_scan_over_flushed_tombstone_runs(self):
        env, _fs, db = fresh_db()
        for i in range(200):
            db.put_sync(b"k%04d" % i, b"v")
        env.run_until(env.process(db.flush_all()))
        for i in range(200):
            if i % 2:
                db.delete_sync(b"k%04d" % i)
        env.run_until(env.process(db.flush_all()))
        result = db.scan_sync(b"k", 200)
        assert [k for k, _v in result] == [b"k%04d" % i
                                           for i in range(0, 200, 2)]


class TestGetEdges:
    def test_get_on_empty_db(self):
        _env, _fs, db = fresh_db()
        assert db.get_sync(b"anything") is None

    def test_reinsert_after_delete(self):
        env, _fs, db = fresh_db()
        db.put_sync(b"k", b"v1")
        db.delete_sync(b"k")
        env.run_until(env.process(db.flush_all()))
        db.put_sync(b"k", b"v2")
        assert db.get_sync(b"k") == b"v2"

    def test_key_larger_than_block(self):
        _env, _fs, db = fresh_db()
        key = b"K" * 6000  # wider than a 4 KB block
        db.put_sync(key, b"big-key-value")
        assert db.get_sync(key) == b"big-key-value"

    def test_many_versions_of_one_key(self):
        env, _fs, db = fresh_db()
        for i in range(500):
            db.put_sync(b"hot", b"v%d" % i)
        env.run_until(env.process(db.flush_all()))
        assert db.get_sync(b"hot") == b"v499"


class TestDeviceParallelism:
    def test_nvme_parallel_channels(self):
        env = Environment()
        dev = BlockDevice(env, NVME_SSD)
        done = []

        def reader(tag):
            yield from dev.read(1 << 20, sequential=True)
            done.append((tag, env.now))

        for tag in range(4):
            env.process(reader(tag))
        env.run()
        # 4 channels: all four finish together, not serially.
        times = [t for _tag, t in done]
        assert max(times) < 2 * min(times)

    def test_barrier_drains_all_channels(self):
        env = Environment()
        dev = BlockDevice(env, NVME_SSD)
        order = []

        def writer():
            yield from dev.write(8 << 20)
            order.append(("write", env.now))

        def syncer():
            yield from dev.barrier(0)
            order.append(("barrier", env.now))

        env.process(writer())
        env.process(writer())
        env.process(syncer())
        env.run()
        assert order[-1][0] == "barrier"


class TestSimFSBoundaries:
    def test_write_at_over_punched_page(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"x" * (4 * PAGE_SIZE))
            yield from handle.fsync()
            handle.punch_hole(PAGE_SIZE, PAGE_SIZE)
            before = fs.total_allocated_bytes()
            handle.write_at(PAGE_SIZE, b"y" * PAGE_SIZE)  # re-allocates
            after = fs.total_allocated_bytes()
            data = yield from handle.read(PAGE_SIZE, PAGE_SIZE)
            return before, after, data

        before, after, data = run(scenario())
        assert after == before + PAGE_SIZE
        assert data == b"y" * PAGE_SIZE

    def test_append_exactly_page_sized(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"a" * PAGE_SIZE)
            handle.append(b"b" * PAGE_SIZE)
            yield from handle.fsync()
            return (yield from handle.read(PAGE_SIZE - 1, 2))

        assert run(scenario()) == b"ab"

    def test_zero_length_append(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            offset = handle.append(b"")
            return offset, handle.size

        assert run(scenario()) == (0, 0)

    def test_read_zero_length(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"data")
            return (yield from handle.read(2, 0))

        assert run(scenario()) == b""

    def test_rename_missing_raises(self, env, fs, run):
        from repro.storage import FileSystemError

        def scenario():
            yield from fs.rename("ghost", "other")

        with pytest.raises(FileSystemError):
            run(scenario())


class TestEngineLifecycle:
    def test_close_is_idempotent_with_open_reopen(self):
        env, fs, db = fresh_db()
        db.put_sync(b"k", b"v")
        db.close_sync()
        db2 = LSMEngine.open_sync(env, fs, small_options(), "db")
        # close() fsyncs the WAL, so the unflushed write survives reopen.
        assert db2.get_sync(b"k") == b"v"
        db2.close_sync()

    def test_two_databases_on_one_fs(self):
        env = Environment()
        fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
        db_a = LSMEngine.open_sync(env, fs, small_options(), "alpha")
        db_b = LSMEngine.open_sync(env, fs, small_options(), "beta")
        db_a.put_sync(b"k", b"from-alpha")
        db_b.put_sync(b"k", b"from-beta")
        assert db_a.get_sync(b"k") == b"from-alpha"
        assert db_b.get_sync(b"k") == b"from-beta"
        assert fs.listdir("alpha/") and fs.listdir("beta/")
