"""Integration tests for the base LSM engine: operations, compaction
dynamics, governors, and the read path."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.lsm import LSMEngine, Options, WriteBatch
from repro.sim import Environment
from repro.storage import BlockDevice, PageCache, SimFS

KB = 1 << 10


def small_options(**overrides):
    base = dict(memtable_size=32 * KB, sstable_size=8 * KB,
                level1_max_bytes=32 * KB, block_cache_bytes=128 * KB,
                max_open_files=128)
    base.update(overrides)
    return Options(**base)


def fresh_db(options=None):
    env = Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    db = LSMEngine.open_sync(env, fs, options or small_options(), "db")
    return env, fs, db


class TestBasicOperations:
    def test_put_get(self):
        _env, _fs, db = fresh_db()
        db.put_sync(b"key", b"value")
        assert db.get_sync(b"key") == b"value"

    def test_get_missing(self):
        _env, _fs, db = fresh_db()
        assert db.get_sync(b"nope") is None

    def test_overwrite(self):
        _env, _fs, db = fresh_db()
        db.put_sync(b"k", b"v1")
        db.put_sync(b"k", b"v2")
        assert db.get_sync(b"k") == b"v2"

    def test_delete(self):
        _env, _fs, db = fresh_db()
        db.put_sync(b"k", b"v")
        db.delete_sync(b"k")
        assert db.get_sync(b"k") is None

    def test_delete_missing_is_fine(self):
        _env, _fs, db = fresh_db()
        db.delete_sync(b"ghost")
        assert db.get_sync(b"ghost") is None

    def test_empty_value(self):
        _env, _fs, db = fresh_db()
        db.put_sync(b"k", b"")
        assert db.get_sync(b"k") == b""

    def test_large_value(self):
        _env, _fs, db = fresh_db()
        value = bytes(range(256)) * 512  # 128 KB, spans many blocks
        db.put_sync(b"big", value)
        assert db.get_sync(b"big") == value

    def test_write_batch_is_atomic_unit(self):
        env, _fs, db = fresh_db()
        batch = WriteBatch()
        batch.put(b"a", b"1")
        batch.put(b"b", b"2")
        batch.delete(b"a")
        env.run_until(env.process(db.write(batch)))
        assert db.get_sync(b"a") is None
        assert db.get_sync(b"b") == b"2"

    def test_empty_batch_noop(self):
        env, _fs, db = fresh_db()
        env.run_until(env.process(db.write(WriteBatch())))
        assert db.versions.last_sequence == 0

    def test_scan_ordered(self):
        _env, _fs, db = fresh_db()
        for i in (5, 1, 3, 2, 4):
            db.put_sync(b"k%02d" % i, b"v%d" % i)
        result = db.scan_sync(b"k02", 3)
        assert result == [(b"k02", b"v2"), (b"k03", b"v3"), (b"k04", b"v4")]

    def test_scan_skips_tombstones(self):
        _env, _fs, db = fresh_db()
        for i in range(5):
            db.put_sync(b"k%d" % i, b"v")
        db.delete_sync(b"k2")
        result = db.scan_sync(b"k0", 10)
        assert [k for k, _v in result] == [b"k0", b"k1", b"k3", b"k4"]

    def test_scan_across_memtable_and_tables(self):
        env, _fs, db = fresh_db()
        for i in range(0, 100, 2):
            db.put_sync(b"k%04d" % i, b"old")
        env.run_until(env.process(db.flush_all()))
        for i in range(1, 100, 2):
            db.put_sync(b"k%04d" % i, b"new")
        result = db.scan_sync(b"k0000", 10)
        assert [k for k, _v in result] == [b"k%04d" % i for i in range(10)]

    def test_describe(self):
        _env, _fs, db = fresh_db()
        db.put_sync(b"k", b"v")
        info = db.describe()
        assert info["engine"] == "leveldb"
        assert info["last_sequence"] == 1
        assert len(info["levels"]) == 7


class TestCompactionDynamics:
    def _load(self, db, env, n=2000, value_size=64, seed=3):
        rng = random.Random(seed)
        model = {}

        def writer():
            for i in range(n):
                key = b"user%08d" % rng.randrange(n)
                value = b"v" * value_size + b"%d" % i
                model[key] = value
                yield from db.put(key, value)
            yield from db.flush_all()

        env.run_until(env.process(writer()))
        return model

    def test_data_migrates_to_deeper_levels(self):
        env, _fs, db = fresh_db()
        self._load(db, env)
        counts = db.level_table_counts()
        assert sum(counts[1:]) > 0  # data left level 0
        assert db.stats.compactions > 0
        assert db.stats.memtable_flushes > 0

    def test_levels_stay_disjoint(self):
        env, _fs, db = fresh_db()
        self._load(db, env)
        db.versions.current.check_invariants()

    def test_all_data_readable_after_compactions(self):
        env, _fs, db = fresh_db()
        model = self._load(db, env)

        def verify():
            for key, value in model.items():
                got = yield from db.get(key)
                assert got == value, key

        env.run_until(env.process(verify()))

    def test_level_sizes_respect_limits_when_idle(self):
        env, _fs, db = fresh_db()
        self._load(db, env)
        options = db.options
        sizes = db.level_byte_sizes()
        for level in range(1, len(sizes) - 1):
            if sizes[level + 1] or sizes[level]:
                # an idle tree holds at most ~1 victim of slack per level
                assert sizes[level] <= options.max_bytes_for_level(level) * 1.5

    def test_tombstones_reclaimed_at_bottom(self):
        # l0_compaction_trigger=1 forces every flush down the tree, so
        # the final compaction reaches the base level and may drop
        # tombstones (LevelDB's IsBaseLevelForKey rule).
        env, _fs, db = fresh_db(small_options(l0_compaction_trigger=1))
        for i in range(300):
            db.put_sync(b"k%06d" % i, b"x" * 64)
        env.run_until(env.process(db.flush_all()))
        populated = db.versions.current.total_bytes()
        for i in range(300):
            db.delete_sync(b"k%06d" % i)
        env.run_until(env.process(db.flush_all()))
        assert db.versions.current.total_bytes() < populated / 2

    def test_obsolete_tables_deleted_from_fs(self):
        env, fs, db = fresh_db()
        self._load(db, env)
        live = {meta.container
                for meta in db.versions.current.live_numbers().values()}
        on_disk = {name for name in fs.listdir("db/") if name.endswith(".ldb")}
        assert on_disk == live

    def test_write_stalls_counted_under_pressure(self):
        env, _fs, db = fresh_db(small_options(
            l0_compaction_trigger=1, l0_slowdown_trigger=1,
            l0_stop_trigger=2))
        self._load(db, env, n=1500)
        assert db.stats.slowdown_events > 0

    def test_seek_compaction_triggers(self):
        options = small_options(enable_seek_compaction=True,
                                seek_compaction_divisor=1 << 30)
        env, _fs, db = fresh_db(options)
        # Two overlapping L0 tables so misses probe 2+ tables.
        for i in range(200):
            db.put_sync(b"a%06d" % i, b"v" * 64)
        env.run_until(env.process(db.flush_all()))
        # allowed_seeks floors at 100; hammer misses within the range.
        def reader():
            for i in range(250):
                yield from db.get(b"a%06d" % (i % 200))

        env.run_until(env.process(reader()))
        # Bloom filters usually answer; seek compaction needs 2+ probes
        # of real blocks, so just assert the accounting exists.
        assert db.stats.tables_probed > 0

    def test_trivial_move_skips_rewrite(self):
        env, fs, db = fresh_db()
        # Sequential keys: compactions frequently find no next-level
        # overlap, so LevelDB's trivial move must fire.
        for i in range(3000):
            db.put_sync(b"seq%08d" % i, b"v" * 64)
        env.run_until(env.process(db.flush_all()))
        assert db.stats.trivial_moves > 0


class TestGovernors:
    def test_l0_stop_blocks_until_compaction(self):
        options = small_options(l0_compaction_trigger=2,
                                l0_slowdown_trigger=2, l0_stop_trigger=3)
        env, _fs, db = fresh_db(options)
        for i in range(3000):
            db.put_sync(b"user%08d" % (i * 7919 % 3000), b"x" * 64)
        env.run_until(env.process(db.flush_all()))
        assert db.stats.stall_events > 0
        assert db.stats.stall_time > 0

    def test_disabled_governors_never_stall_on_l0(self):
        options = small_options(enable_l0_slowdown=False,
                                enable_l0_stop=False)
        env, _fs, db = fresh_db(options)
        for i in range(1000):
            db.put_sync(b"user%08d" % (i * 7919 % 1000), b"x" * 64)
        env.run_until(env.process(db.flush_all()))
        assert db.stats.slowdown_events == 0

    def test_slowdown_sleep_is_1ms(self):
        options = small_options(l0_slowdown_trigger=1, l0_stop_trigger=1000)
        env, _fs, db = fresh_db(options)
        for i in range(1500):
            db.put_sync(b"user%08d" % (i * 104729 % 1500), b"x" * 64)
        env.run_until(env.process(db.flush_all()))
        if db.stats.slowdown_events:
            assert db.stats.slowdown_time == pytest.approx(
                db.stats.slowdown_events * options.slowdown_sleep)


class TestConcurrentClients:
    def test_interleaved_writers_all_land(self):
        env, _fs, db = fresh_db()
        done = []

        def writer(tag, count):
            for i in range(count):
                yield from db.put(b"%s-%04d" % (tag, i), tag)
            done.append(tag)

        for tag in (b"alpha", b"beta", b"gamma", b"delta"):
            env.process(writer(tag, 200))
        env.run()
        assert len(done) == 4

        def verify():
            for tag in (b"alpha", b"beta", b"gamma", b"delta"):
                for i in range(200):
                    got = yield from db.get(b"%s-%04d" % (tag, i))
                    assert got == tag

        env.run_until(env.process(verify()))

    def test_reader_during_compaction_sees_consistent_data(self):
        env, _fs, db = fresh_db()
        errors = []

        def writer():
            for i in range(2000):
                yield from db.put(b"user%08d" % (i % 500), b"gen-%d" % i)

        def reader():
            for _ in range(500):
                value = yield from db.get(b"user%08d" % 42)
                if value is not None and not value.startswith(b"gen-"):
                    errors.append(value)

        env.process(writer())
        env.process(reader())
        env.run()
        assert errors == []


class TestPropertyVsModel:
    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(0, 120),
                              st.binary(min_size=1, max_size=32)),
                    min_size=1, max_size=300))
    def test_engine_matches_dict(self, ops):
        env, _fs, db = fresh_db(small_options(memtable_size=4 * KB,
                                              sstable_size=2 * KB,
                                              level1_max_bytes=8 * KB))
        model = {}

        def apply_ops():
            for is_put, keynum, value in ops:
                key = b"key%04d" % keynum
                if is_put:
                    model[key] = value
                    yield from db.put(key, value)
                else:
                    model.pop(key, None)
                    yield from db.delete(key)
            yield from db.flush_all()
            for keynum in range(121):
                key = b"key%04d" % keynum
                got = yield from db.get(key)
                assert got == model.get(key), key
            scan = yield from db.scan(b"key0000", 200)
            assert scan == sorted(model.items())[:200]

        env.run_until(env.process(apply_ops()))


class TestKill:
    def test_kill_stops_workers_without_quiescing(self):
        env, fs, db = fresh_db()
        for i in range(800):
            db.put_sync(b"user%08d" % (i * 7 % 800), b"x" * 64)
        db.kill()
        env.run()  # drain: workers must exit, not deadlock or raise
        assert all(not worker.is_alive for worker in db._workers)

    def test_reopen_after_kill_and_crash(self):
        env, fs, db = fresh_db()
        for i in range(500):
            db.put_sync(b"key%06d" % i, b"v%d" % i)
        env.run_until(env.process(db.flush_all()))
        for i in range(200):
            db.put_sync(b"late%06d" % i, b"x")
        db.kill()
        fs.crash(survive_probability=0.0)
        db2 = LSMEngine.open_sync(env, fs, small_options(), "db")
        for i in range(500):
            assert db2.get_sync(b"key%06d" % i) == b"v%d" % i


class TestBinaryKeys:
    def test_arbitrary_bytes_roundtrip(self):
        _env, _fs, db = fresh_db()
        keys = [b"\x00", b"\x00\x00", b"\xff" * 8, bytes(range(32)),
                b"a\x00b", b"\xfe\xff"]
        for i, key in enumerate(keys):
            db.put_sync(key, b"value-%d" % i)
        for i, key in enumerate(keys):
            assert db.get_sync(key) == b"value-%d" % i

    def test_binary_keys_survive_compaction(self):
        env, _fs, db = fresh_db()
        import random as _random
        rng = _random.Random(99)
        model = {}
        def writer():
            for _ in range(1500):
                key = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 12)))
                value = bytes(rng.randrange(256) for _ in range(40))
                model[key] = value
                yield from db.put(key, value)
            yield from db.flush_all()
            for key, value in model.items():
                got = yield from db.get(key)
                assert got == value, key
        env.run_until(env.process(writer()))


class TestReadPathLockSafety:
    """The read mutex must survive a raising lookup (simcheck SIM008).

    ``get``/``scan`` take the db mutex for their in-memory phase; the
    release sits in a ``finally`` so an exception inside the locked
    window cannot leak the mutex and deadlock every later writer.
    """

    class _Boom(RuntimeError):
        pass

    def test_get_releases_mutex_when_lookup_raises(self):
        _env, _fs, db = fresh_db()
        db.put_sync(b"k", b"v")
        assert db.read_lock  # the guard only matters on this family
        real = db._memtable

        class Exploding:
            def get(self, key, snapshot):
                raise TestReadPathLockSafety._Boom

        db._memtable = Exploding()
        with pytest.raises(self._Boom):
            db.get_sync(b"k")
        db._memtable = real
        assert db._mutex.in_use == 0
        assert db.get_sync(b"k") == b"v"

    def test_scan_releases_mutex_when_lookup_raises(self):
        _env, _fs, db = fresh_db()
        db.put_sync(b"k", b"v")
        real = db._memtable

        class Exploding:
            def entries_from(self, start_key):
                raise TestReadPathLockSafety._Boom

        db._memtable = Exploding()
        with pytest.raises(self._Boom):
            db.scan_sync(b"", 10)
        db._memtable = real
        assert db._mutex.in_use == 0
        assert db.scan_sync(b"", 10) == [(b"k", b"v")]
