"""Every script in examples/ must run end-to-end.

Each example is imported under a private module name (so its
``__main__`` guard does not fire), its workload-size constants are
shrunk, and ``main()`` is called.  The ``REPRO_BENCH_*`` environment
overrides shrink the examples that size themselves via
:class:`repro.bench.BenchConfig`.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: Module-level workload knobs to shrink wherever an example defines them.
SMALL = {
    "RECORDS": 800,
    "ROUNDS": 3,
    "OPS_PER_ROUND": 80,
}


def test_examples_exist():
    assert EXAMPLES, f"no examples found under {EXAMPLES_DIR}"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs(path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_RECORDS", "500")
    monkeypatch.setenv("REPRO_BENCH_OPS", "200")
    monkeypatch.setenv("REPRO_BENCH_SCALE", "1024")
    name = f"_example_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    monkeypatch.setitem(sys.modules, name, module)
    spec.loader.exec_module(module)
    for constant, value in SMALL.items():
        if hasattr(module, constant):
            monkeypatch.setattr(module, constant, value)
    assert hasattr(module, "main"), f"{path.name} has no main()"
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} printed nothing"
