"""Tests for repro.faults: crash modes, EIO injection, images, the sweep.

The heavyweight acceptance test is ``test_sweep_passes_all_engines``:
one golden run per architecture family, every captured crash image
checked under the smoke fault models.  The seeded-bug test proves the
harness has teeth — an engine that skips the MANIFEST commit barrier
must be caught.
"""

import random

import pytest

from repro.faults import (
    DEFAULT_MODELS,
    SITE_BARRIER,
    SITE_TIMER,
    SITE_WAL_APPEND,
    CrashChecker,
    CrashInjector,
    DurabilityOracle,
    FaultModel,
    FaultPlan,
    TransientEIO,
    crash_sweep,
    smoke_config,
    sweep_engine,
)
from repro.faults.sweep import DEFAULT_ENGINES, SweepConfig
from repro.lsm import LSMEngine, Options
from repro.sim import Environment
from repro.storage import (
    PAGE_SIZE,
    SECTOR_SIZE,
    BlockDevice,
    DeviceError,
    PageCache,
    SimFS,
)

KB = 1 << 10


def small_options(**overrides):
    base = dict(memtable_size=16 * KB, sstable_size=8 * KB,
                level1_max_bytes=32 * KB, block_cache_bytes=128 * KB,
                wal_sync=True)
    base.update(overrides)
    return Options(**base)


def fresh_stack():
    env = Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    return env, fs


class TestCrashModes:
    """SimFS-level semantics of the torn-tail and reorder fault models."""

    def _one_page_file(self, run, fs):
        handle = run(fs.create("f"))
        handle.append(b"A" * PAGE_SIZE)
        run(handle.fsync())
        return handle

    def test_torn_tail_keeps_sector_aligned_prefix(self, env, fs, run):
        handle = self._one_page_file(run, fs)
        handle.write_at(0, b"B" * PAGE_SIZE)
        fs.crash(rng=random.Random(11), survive_probability=0.0,
                 torn_tail=True)
        data = run(handle.read(0, PAGE_SIZE))
        keep = data.index(b"A")
        assert data == b"B" * keep + b"A" * (PAGE_SIZE - keep)
        assert keep % SECTOR_SIZE == 0
        assert 0 < keep < PAGE_SIZE

    def test_torn_tail_never_tears_synced_data(self, env, fs, run):
        handle = self._one_page_file(run, fs)
        fs.crash(rng=random.Random(5), survive_probability=0.0,
                 torn_tail=True)
        assert run(handle.read(0, PAGE_SIZE)) == b"A" * PAGE_SIZE

    def test_epoch_mode_preserves_write_order(self):
        # Page 0 is dirtied one epoch before page 1: under the default
        # (epoch-ordered) device, page 1 surviving implies page 0 did.
        for seed in range(40):
            env, fs = fresh_stack()
            handle = env.run_until(env.process(fs.create("f")))
            handle.write_at(0, b"E" * PAGE_SIZE)
            fs.epoch += 1  # what any intervening barrier would do
            handle.write_at(PAGE_SIZE, b"L" * PAGE_SIZE)
            fs.crash(rng=random.Random(seed), survive_probability=0.5)
            data = env.run_until(env.process(handle.read(0, 2 * PAGE_SIZE)))
            late_survived = data[PAGE_SIZE:] == b"L" * PAGE_SIZE
            early_survived = data[:PAGE_SIZE] == b"E" * PAGE_SIZE
            assert not (late_survived and not early_survived)

    def test_reorder_mode_can_violate_epoch_order(self):
        # The adversarial device persists pages independently: across
        # enough seeds it must produce late-without-early at least once.
        seen_violation = False
        for seed in range(60):
            env, fs = fresh_stack()
            handle = env.run_until(env.process(fs.create("f")))
            handle.write_at(0, b"E" * PAGE_SIZE)
            fs.epoch += 1
            handle.write_at(PAGE_SIZE, b"L" * PAGE_SIZE)
            fs.crash(rng=random.Random(seed), survive_probability=0.5,
                     mode="reorder")
            data = env.run_until(env.process(handle.read(0, 2 * PAGE_SIZE)))
            if (data[PAGE_SIZE:] == b"L" * PAGE_SIZE
                    and data[:PAGE_SIZE] != b"E" * PAGE_SIZE):
                seen_violation = True
                break
        assert seen_violation

    def test_unknown_mode_rejected(self, fs):
        with pytest.raises(ValueError):
            fs.crash(mode="lightning")


class TestTransientEIO:
    def test_retries_are_counted_and_write_succeeds(self, env):
        device = BlockDevice(env)
        device.fault_hook = TransientEIO(1.0, random.Random(1),
                                         max_failures=3)
        env.run_until(env.process(device.write(8 * KB)))
        assert device.stats.num_eio_retries == 3
        assert device.stats.num_writes == 1

    def test_each_retry_pays_device_time(self, env):
        device = BlockDevice(env)
        env.run_until(env.process(device.write(8 * KB)))
        clean = env.now
        device.fault_hook = TransientEIO(1.0, random.Random(1),
                                         max_failures=2)
        before = env.now
        env.run_until(env.process(device.write(8 * KB)))
        # simcheck: waive[SIM004] - pytest.approx IS the epsilon compare
        assert env.now - before == pytest.approx(3 * clean)

    def test_persistent_eio_raises_device_error(self, env):
        device = BlockDevice(env)
        device.fault_hook = TransientEIO(1.0, random.Random(1),
                                         max_failures=None)
        with pytest.raises(DeviceError):
            env.run_until(env.process(device.read(4 * KB)))
        assert device.stats.num_eio_retries == device.max_eio_retries + 1

    def test_ops_filter_restricts_faults(self, env):
        device = BlockDevice(env)
        device.fault_hook = TransientEIO(1.0, random.Random(1),
                                         max_failures=None, ops=("read",))
        env.run_until(env.process(device.write(8 * KB)))
        assert device.stats.num_eio_retries == 0

    def test_engine_survives_transient_eio(self):
        env, fs = fresh_stack()
        fs.device.fault_hook = TransientEIO(0.2, random.Random(3),
                                            max_failures=32)
        db = LSMEngine.open_sync(env, fs, small_options(), "db")
        for i in range(200):
            db.put_sync(b"key%04d" % i, b"value-%d" % i)
        env.run_until(env.process(db.flush_all()))
        for i in range(200):
            assert db.get_sync(b"key%04d" % i) == b"value-%d" % i
        db.close_sync()
        assert fs.device.stats.num_eio_retries > 0


class TestOracle:
    def test_acked_value_is_allowed(self):
        oracle = DurabilityOracle()
        oracle.begin(b"k", b"v1")
        oracle.acked(b"k", b"v1")
        assert oracle.snapshot().allowed(b"k") == {b"v1"}

    def test_pending_value_also_allowed(self):
        oracle = DurabilityOracle()
        oracle.begin(b"k", b"v1")
        oracle.acked(b"k", b"v1")
        oracle.begin(b"k", b"v2")
        state = oracle.snapshot()
        assert state.allowed(b"k") == {b"v1", b"v2"}
        oracle.acked(b"k", b"v2")
        assert oracle.snapshot().allowed(b"k") == {b"v2"}

    def test_acked_delete_disallows_old_value(self):
        oracle = DurabilityOracle()
        oracle.begin(b"k", b"v")
        oracle.acked(b"k", b"v")
        oracle.begin(b"k", None)
        oracle.acked(b"k", None)
        state = oracle.snapshot()
        assert state.allowed(b"k") == {None}  # resurrection is a violation
        assert state.keys() == {b"k"}

    def test_never_acked_key_may_vanish(self):
        oracle = DurabilityOracle()
        oracle.begin(b"k", b"v")
        assert oracle.snapshot().allowed(b"k") == {None, b"v"}


class TestInjectorAndPlan:
    def _golden_run(self, plan, num_ops=40, oracle=None):
        env, fs = fresh_stack()
        injector = CrashInjector(fs, plan, oracle)
        db = LSMEngine.open_sync(env, fs, small_options(), "db")
        for i in range(num_ops):
            db.put_sync(b"key%04d" % i, b"v%d" % i)
        env.run_until(env.process(db.flush_all()))
        db.close_sync()
        injector.disarm()
        return env, fs, injector

    def test_site_filter_limits_captures(self):
        plan = FaultPlan(sites=(SITE_WAL_APPEND,), max_per_site=None)
        _env, _fs, injector = self._golden_run(plan)
        assert injector.images
        assert {image.site for image in injector.images} == {SITE_WAL_APPEND}
        # Other sites were still *counted*, just not captured.
        assert injector.site_counts[SITE_BARRIER] > 0

    def test_stride_thins_captures(self):
        dense = self._golden_run(
            FaultPlan(sites=(SITE_WAL_APPEND,), max_per_site=None))[2]
        sparse = self._golden_run(
            FaultPlan(sites=(SITE_WAL_APPEND,), stride=4,
                      max_per_site=None))[2]
        assert len(sparse.images) == -(-len(dense.images) // 4)

    def test_max_per_site_and_max_images(self):
        plan = FaultPlan(max_per_site=2, max_images=5)
        _env, _fs, injector = self._golden_run(plan)
        assert len(injector.images) <= 5
        per_site = {}
        for image in injector.images:
            per_site[image.site] = per_site.get(image.site, 0) + 1
        assert all(n <= 2 for n in per_site.values())

    def test_disarm_stops_capture(self):
        env, fs = fresh_stack()
        injector = CrashInjector(fs, FaultPlan())
        db = LSMEngine.open_sync(env, fs, small_options(), "db")
        db.put_sync(b"a", b"1")
        captured = len(injector.images)
        assert captured > 0
        injector.disarm()
        db.put_sync(b"b", b"2")
        db.close_sync()
        assert len(injector.images) == captured

    def test_arm_at_times_captures_timer_site(self):
        env, fs = fresh_stack()
        injector = CrashInjector(fs, FaultPlan())
        db = LSMEngine.open_sync(env, fs, small_options(), "db")
        injector.arm_at_times(env.now + 1e-4)
        for i in range(50):
            db.put_sync(b"key%04d" % i, b"v")
        db.close_sync()
        injector.disarm()
        assert any(image.site == SITE_TIMER for image in injector.images)

    def test_site_counts_match_fs_barrier_stats(self):
        env, fs, injector = self._golden_run(FaultPlan())
        assert injector.site_counts[SITE_BARRIER] == (
            fs.stats.num_fsync + fs.stats.num_fdatasync)

    def test_image_materializes_independent_copy(self):
        _env, fs, injector = self._golden_run(FaultPlan(), oracle=None)
        image = injector.images[-1]
        env2, fs2 = image.materialize()  # no model: as-captured
        assert fs2 is not fs
        name = image.files[0].name
        assert fs2.exists(name)
        # Mutating the copy leaves the original untouched.
        env2.run_until(env2.process(fs2.unlink(name)))
        assert not fs2.exists(name)
        assert fs.exists(name)


class TestSeededBug:
    """A deliberately broken engine must be caught by the checker."""

    def test_skipping_manifest_barrier_is_caught(self):
        env, fs = fresh_stack()
        oracle = DurabilityOracle()
        injector = CrashInjector(
            fs, FaultPlan(max_images=500, max_per_site=None), oracle)
        db = LSMEngine.open_sync(env, fs, small_options(), "db")

        # Seed the bug: MANIFEST fsyncs silently do nothing, as if the
        # engine forgot the commit barrier of §2.4.
        real_fsync = fs.fsync

        def buggy_fsync(handle):
            if "MANIFEST" in handle.name:
                return iter(())
            return real_fsync(handle)

        fs.fsync = buggy_fsync
        for i in range(60):
            key, value = b"key%04d" % i, b"durable-%d" % i
            oracle.begin(key, value)
            db.put_sync(key, value)
            oracle.acked(key, value)
        # The flush unlinks the WAL; the MANIFEST record naming the new
        # table was never made durable, so the data now has no home.
        env.run_until(env.process(db.flush_all()))
        mark = len(injector.images)
        key, value = b"post-flush", b"p"
        oracle.begin(key, value)
        db.put_sync(key, value)
        oracle.acked(key, value)
        db.close_sync()
        injector.disarm()
        fs.fsync = real_fsync

        post_flush = injector.images[mark:]
        assert post_flush
        checker = CrashChecker(LSMEngine, small_options(), "db")
        all_lost = DEFAULT_MODELS[0]
        assert all_lost.survive_probability == 0.0
        violations = []
        for image in post_flush:
            violations.extend(checker.check_image(image, all_lost))
        assert any(v.kind == "durability" for v in violations), \
            "checker failed to catch the skipped MANIFEST barrier"

    def test_same_images_pass_without_the_bug(self):
        env, fs = fresh_stack()
        oracle = DurabilityOracle()
        injector = CrashInjector(fs, FaultPlan(max_per_site=None), oracle)
        db = LSMEngine.open_sync(env, fs, small_options(), "db")
        for i in range(60):
            key, value = b"key%04d" % i, b"durable-%d" % i
            oracle.begin(key, value)
            db.put_sync(key, value)
            oracle.acked(key, value)
        env.run_until(env.process(db.flush_all()))
        db.close_sync()
        injector.disarm()
        checker = CrashChecker(LSMEngine, small_options(), "db")
        for image in injector.images[-4:]:
            assert checker.check_image(image, DEFAULT_MODELS[0]) == []


class TestSweep:
    def test_sweep_passes_all_engines(self):
        """Acceptance: the CI smoke sweep is green for all four families."""
        report = crash_sweep(smoke_config())
        assert [r.engine for r in report.results] == list(DEFAULT_ENGINES)
        for result in report.results:
            assert result.images > 0
            assert result.checks >= 2 * result.images
            assert result.barrier_spans > 0
        assert report.ok, "\n".join(report.summary_lines())

    def test_sweep_summary_mentions_every_engine(self):
        report = crash_sweep(smoke_config(engines=("leveldb",),
                                          num_ops=40))
        lines = report.summary_lines()
        assert lines[-1] == "crash sweep: PASS"
        assert any("leveldb" in line for line in lines)

    def test_sweep_engine_resolves_extra_systems(self):
        plan = FaultPlan(max_images=4, max_per_site=1,
                         models=(FaultModel("all-lost", 0.0),))
        result = sweep_engine("rocksbolt", SweepConfig(num_ops=30, plan=plan))
        assert result.ok, "\n".join(str(v) for v in result.violations)
