"""WAL group-commit semantics: merged records, one barrier per group,
contiguous sequences, visibility ordering, and all-or-nothing crashes."""

import pytest

from repro.faults import (
    SITE_WAL_GROUP_APPEND,
    CrashChecker,
    CrashInjector,
    DurabilityOracle,
    FaultModel,
    FaultPlan,
)
from repro.health import ReadOnlyError
from repro.lsm import LSMEngine, Options, WriteBatch, read_log_records
from repro.sim import Environment
from repro.storage import BlockDevice, PageCache, SimFS

KB = 1 << 10
MB = 1 << 20


def big_options(**overrides):
    # A memtable far larger than the test workload, so flush/compaction
    # barriers never pollute the WAL barrier counts under test.
    base = dict(memtable_size=4 * MB, sstable_size=1 * MB,
                level1_max_bytes=4 * MB, wal_sync=True)
    base.update(overrides)
    return Options(**base)


def fresh_db(options=None):
    env = Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    db = LSMEngine.open_sync(env, fs, options or big_options(), "db")
    return env, fs, db


def concurrent_puts(env, db, pairs, record_completion=None):
    """Spawn one put process per (key, value) pair in the same instant."""
    def one(key, value):
        waited = yield from db.put(key, value)
        if record_completion is not None:
            record_completion(key, env.now, waited)

    procs = [env.process(one(k, v), name=f"w-{i}")
             for i, (k, v) in enumerate(pairs)]
    env.run_until(env.all_of(procs))


def wal_batches(fs, db):
    """Decode every committed WAL record as (first_seq, op_count)."""
    name = db._wal_name(db._wal_number)
    data = bytes(fs._files[name].data)
    out = []
    for payload in read_log_records(data):
        first_seq, batch = WriteBatch.decode(payload)
        out.append((first_seq, len(batch.ops)))
    return out


class TestGroupMerging:
    def test_concurrent_writers_share_barriers(self):
        env, fs, db = fresh_db()
        before = fs.stats.num_barrier_calls
        pairs = [(b"k%02d" % i, b"v" * 64) for i in range(8)]
        concurrent_puts(env, db, pairs)
        barriers = fs.stats.num_barrier_calls - before
        assert db.stats.grouped_writes == 8
        assert barriers == db.stats.group_commits < 8
        assert db.stats.barriers_saved == 8 - db.stats.group_commits > 0
        for key, value in pairs:
            assert db.get_sync(key) == value

    def test_followers_of_one_group_wake_at_the_same_instant(self):
        env, _fs, db = fresh_db()
        completions = {}
        pairs = [(b"k%02d" % i, b"v" * 64) for i in range(8)]
        t0 = env.now
        concurrent_puts(env, db, pairs,
                        lambda key, t, w: completions.setdefault(key, (t, w)))
        # A follower's wake instant is its enqueue time plus its reported
        # wait — the instant its group's leader finished the barrier, so
        # followers of the same group share it.  Leaders wake earlier
        # (post-stall, pre-commit), so the distinct wake instants are
        # one per leader plus one per group that merged followers.
        wakes = sorted(set(round(t0 + waited, 12)
                           for _t, waited in completions.values()))
        groups = db.stats.group_commits
        assert groups < 8 <= db.stats.grouped_writes
        assert groups <= len(wakes) <= 2 * groups

    def test_wal_sync_off_merges_without_barriers(self):
        env, fs, db = fresh_db(big_options(wal_sync=False))
        before = fs.stats.num_barrier_calls
        concurrent_puts(env, db, [(b"k%02d" % i, b"v" * 64)
                                  for i in range(8)])
        assert fs.stats.num_barrier_calls == before
        assert db.stats.grouped_writes == 8
        assert db.stats.group_commits < 8  # still merged, just unsynced
        assert db.stats.barriers_saved == 0

    def test_write_group_bytes_zero_disables_merging(self):
        env, fs, db = fresh_db(big_options(write_group_bytes=0))
        before = fs.stats.num_barrier_calls
        concurrent_puts(env, db, [(b"k%02d" % i, b"v" * 64)
                                  for i in range(6)])
        assert db.stats.group_commits == 6
        assert db.stats.grouped_writes == 6
        assert db.stats.barriers_saved == 0
        assert fs.stats.num_barrier_calls - before == 6

    def test_byte_budget_caps_group_size(self):
        # Each batch is ~96 bytes; a 150-byte budget fits the leader
        # plus at most one follower.
        env, _fs, db = fresh_db(big_options(write_group_bytes=150))
        concurrent_puts(env, db, [(b"k%02d" % i, b"v" * 84)
                                  for i in range(6)])
        assert db.stats.grouped_writes == 6
        assert db.stats.group_commits >= 3


class TestSequencing:
    def test_sequences_contiguous_and_monotone_across_groups(self):
        env, fs, db = fresh_db()
        for round_index in range(3):
            pairs = [(b"r%d-k%02d" % (round_index, i), b"v" * 32)
                     for i in range(5)]
            concurrent_puts(env, db, pairs)
        batches = wal_batches(fs, db)
        assert sum(count for _s, count in batches) == 15
        expected = 1
        for first_seq, count in batches:
            assert first_seq == expected
            expected += count
        assert db.versions.last_sequence == 15

    def test_merged_group_of_one_encodes_like_a_single_batch(self):
        merged = WriteBatch()
        merged.put(b"a", b"1")
        other = WriteBatch()
        other.put(b"b", b"2")
        merged.extend(other)
        flat = WriteBatch()
        flat.put(b"a", b"1")
        flat.put(b"b", b"2")
        assert merged.encode(7) == flat.encode(7)


class TestVisibility:
    def test_write_not_readable_before_its_barrier(self):
        env, fs, db = fresh_db()
        seen = {}

        def poll():
            while True:
                value = yield from db.get(b"watched")
                if value is not None:
                    seen["barriers"] = fs.stats.num_barrier_calls
                    return
                yield env.timeout(1e-7)

        before = fs.stats.num_barrier_calls
        reader = env.process(poll(), name="reader")
        writer = env.process(db.put(b"watched", b"v" * 64), name="writer")
        env.run_until(env.all_of([reader, writer]))
        # The value only became visible after the group's fdatasync
        # completed: memtable insertion happens strictly after the
        # barrier on the wal_sync path.
        assert seen["barriers"] >= before + 1


class TestGroupFailure:
    def test_disk_full_fails_the_whole_group_without_wedging(self):
        env, fs, db = fresh_db()
        db.put_sync(b"seed", b"x")
        fs.set_capacity(fs.total_allocated_bytes())  # no room for anything
        outcomes = []

        def one(key):
            try:
                yield from db.put(key, b"v" * (8 * KB))
            except ReadOnlyError as exc:
                outcomes.append((key, repr(exc)))

        procs = [env.process(one(b"f%02d" % i)) for i in range(4)]
        env.run_until(env.all_of(procs))
        assert len(outcomes) == 4          # every writer got a typed error
        assert not db._write_queue         # nobody left stranded
        assert db.get_sync(b"seed") == b"x"

    def test_sequence_numbers_unclaimed_on_failed_group(self):
        env, fs, db = fresh_db()
        db.put_sync(b"seed", b"x")
        last = db.versions.last_sequence
        fs.set_capacity(fs.total_allocated_bytes())

        def one(key):
            with pytest.raises(ReadOnlyError):
                yield from db.put(key, b"v" * (8 * KB))

        procs = [env.process(one(b"f%02d" % i)) for i in range(3)]
        env.run_until(env.all_of(procs))
        assert db.versions.last_sequence == last


class TestTornGroupCrash:
    def _run_with_injector(self, models):
        options = big_options()
        env = Environment()
        fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
        oracle = DurabilityOracle()
        plan = FaultPlan(sites=(SITE_WAL_GROUP_APPEND,), max_images=8,
                         max_per_site=8, models=models)
        injector = CrashInjector(fs, plan, oracle)
        db = LSMEngine.open_sync(env, fs, options, "db")

        def one(key, value):
            yield from db.put(key, value)
            oracle.acked(key, value)

        for round_index in range(4):
            procs = []
            for i in range(4):
                key = b"g%d-%02d" % (round_index, i)
                value = b"val-%d-%02d" % (round_index, i)
                oracle.begin(key, value)
                procs.append(env.process(one(key, value)))
            env.run_until(env.all_of(procs))
        db.close_sync()
        injector.disarm()
        return injector, options

    def test_torn_group_is_all_or_nothing(self):
        models = (FaultModel("all-lost", 0.0),
                  FaultModel("subset", 0.5),
                  FaultModel("torn-tail", 0.5, torn_tail=True))
        injector, options = self._run_with_injector(models)
        assert injector.images, "no merged-group crash points captured"
        for image in injector.images:
            assert image.site == SITE_WAL_GROUP_APPEND
            assert image.detail["group_size"] >= 2
            assert len(image.detail["keys"]) >= 2
        checker = CrashChecker(LSMEngine, options, "db")
        violations = []
        for image in injector.images:
            for model in models:
                violations.extend(checker.check_image(image, model, seed=3))
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_all_lost_crash_drops_the_entire_group(self):
        models = (FaultModel("all-lost", 0.0),)
        injector, options = self._run_with_injector(models)
        image = injector.images[0]
        env, fs = image.materialize(models[0], rng=None)
        db = LSMEngine.open_sync(env, fs, options.copy(), "db")
        state = image.oracle
        survivors = [key for key in image.detail["keys"]
                     if db.get_sync(key) in
                     set(state.pending.get(key, ())) - {None}]
        assert survivors == []  # the unsynced merged record vanished whole


class TestSingleWriterUnchanged:
    def test_sequential_writes_never_group(self):
        env, fs, db = fresh_db()
        before = fs.stats.num_barrier_calls
        for i in range(10):
            db.put_sync(b"s%02d" % i, b"v" * 64)
        assert db.stats.group_commits == 10
        assert db.stats.grouped_writes == 10
        assert db.stats.barriers_saved == 0
        assert fs.stats.num_barrier_calls - before == 10

    def test_two_identical_runs_are_byte_identical(self):
        def run():
            env, fs, db = fresh_db()
            for i in range(50):
                db.put_sync(b"s%03d" % i, b"v" * 100)
            name = db._wal_name(db._wal_number)
            return env.now, bytes(fs._files[name].data), db.stats.snapshot()

        t1, wal1, stats1 = run()
        t2, wal2, stats2 = run()
        assert t1 == t2
        assert wal1 == wal2
        assert vars(stats1) == vars(stats2)
