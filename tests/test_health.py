"""Tests for repro.health: severity policy, degraded modes, scrubbing.

Covers the runtime error manager (classification, pause/auto-resume,
retries-exhausted escalation, ENOSPC read-only mode and its exits), the
filesystem capacity model, device retry accounting, the background-
error unwind regression (a failed compaction must not wedge the
engine), read-only exactness, the corruption scrubber across all four
engine families, quarantine persistence, and the transient-fault chaos
schedule end to end.
"""

import random

import pytest

from repro.bench import SYSTEMS
from repro.bench.report import unified_snapshot
from repro.faults import ChaosConfig, TransientEIO, chaos_sweep
from repro.health import (
    SEVERITY_FATAL,
    SEVERITY_HARD,
    SEVERITY_SOFT,
    ErrorManager,
    ReadOnlyError,
    Scrubber,
)
from repro.lsm import Options
from repro.lsm.codec import CorruptionError
from repro.lsm.engine import LSMEngine
from repro.lsm.manifest import VersionEdit
from repro.sim import Environment
from repro.storage import (
    SATA_SSD,
    BlockDevice,
    DeviceError,
    DiskFullError,
    PageCache,
    SimFS,
)

KB = 1 << 10


def sleep(env, delay):
    """A coroutine that just advances virtual time."""
    yield env.timeout(delay)


def drive(env, gen):
    """Run a coroutine to completion on ``env`` and return its value."""
    return env.run_until(env.process(gen))


def settle(env, delay=0.05, rounds=1):
    """Advance time so background/auto-resume processes can run."""
    for _ in range(rounds):
        drive(env, sleep(env, delay))


def small_options(**overrides):
    base = dict(memtable_size=16 * KB, sstable_size=8 * KB,
                level1_max_bytes=32 * KB, block_cache_bytes=128 * KB,
                bg_error_backoff=1e-4, bg_error_backoff_max=1e-2)
    base.update(overrides)
    return Options(**base)


def fresh_stack(page_cache_bytes=16 << 20):
    env = Environment()
    device = BlockDevice(env, SATA_SSD)
    fs = SimFS(env, device, PageCache(page_cache_bytes))
    return env, device, fs


class _Stack:
    """Duck-typed stand-in for the bench harness Stack."""

    def __init__(self, env, device, fs):
        self.env = env
        self.device = device
        self.fs = fs


# ---------------------------------------------------------------------------
# ErrorManager unit behaviour
# ---------------------------------------------------------------------------

class TestErrorManager:
    def _manager(self, env, space_ok=None, **option_overrides):
        options = small_options(**option_overrides)
        space_check = None if space_ok is None else (lambda: space_ok[0])
        return ErrorManager(env, options, "db", space_check=space_check)

    def test_classification_table(self):
        env, _device, _fs = fresh_stack()
        mgr = self._manager(env)
        assert mgr.classify("flush", DiskFullError("full")) == SEVERITY_HARD
        assert mgr.classify("flush", DeviceError("eio")) == SEVERITY_HARD
        assert mgr.classify("flush", CorruptionError("bad")) == SEVERITY_SOFT
        assert mgr.classify("read", DeviceError("eio")) == SEVERITY_SOFT
        assert mgr.classify("cleanup", DiskFullError("x")) == SEVERITY_SOFT
        assert mgr.classify("manifest_in_doubt",
                            DeviceError("eio")) == SEVERITY_FATAL
        # Unclassified exceptions are never assumed benign.
        assert mgr.classify("flush", RuntimeError("bug")) == SEVERITY_FATAL

    def test_soft_error_counts_but_does_not_pause(self):
        env, _device, _fs = fresh_stack()
        mgr = self._manager(env)
        assert mgr.report("read", DeviceError("eio")) == SEVERITY_SOFT
        assert mgr.bg_error_count == 1
        assert not mgr.paused and not mgr.degraded

    def test_hard_error_pauses_then_auto_resumes(self):
        env, _device, _fs = fresh_stack()
        mgr = self._manager(env)
        mgr.report("compaction", DeviceError("eio"))
        assert mgr.paused and mgr.degraded and not mgr.read_only
        settle(env)
        assert not mgr.paused and not mgr.degraded
        assert mgr.resume_attempts == 1
        assert mgr.time_in_degraded > 0

    def test_retries_exhausted_escalates_to_read_only(self):
        env, _device, _fs = fresh_stack()
        space_ok = [False]
        mgr = self._manager(env, space_ok=space_ok, bg_error_max_retries=3)
        mgr.report("flush", DiskFullError("full"))
        assert mgr.read_only and mgr.enospc
        settle(env, rounds=4)
        assert mgr.fatal and mgr.read_only and mgr.paused
        assert "retries exhausted" in mgr.reason

    def test_poke_exits_enospc_even_after_escalation(self):
        env, _device, _fs = fresh_stack()
        space_ok = [False]
        mgr = self._manager(env, space_ok=space_ok, bg_error_max_retries=2)
        mgr.report("flush", DiskFullError("full"))
        settle(env, rounds=4)
        assert mgr.fatal
        space_ok[0] = True
        mgr.poke()
        assert not mgr.degraded and not mgr.fatal
        assert mgr.reason is None

    def test_poke_is_a_noop_while_space_is_still_short(self):
        env, _device, _fs = fresh_stack()
        space_ok = [False]
        mgr = self._manager(env, space_ok=space_ok,
                            enable_auto_resume=False)
        mgr.report("flush", DiskFullError("full"))
        mgr.poke()
        assert mgr.paused and mgr.read_only

    def test_manual_reset_clears_fatal(self):
        env, _device, _fs = fresh_stack()
        mgr = self._manager(env)
        mgr.report("manifest_in_doubt", DeviceError("eio"))
        assert mgr.fatal and mgr.read_only
        settle(env, rounds=2)
        assert mgr.fatal  # fatal never auto-resumes
        mgr.manual_reset()
        assert not mgr.degraded

    def test_snapshot_shape(self):
        env, _device, _fs = fresh_stack()
        mgr = self._manager(env)
        mgr.report("flush", DeviceError("eio"))
        snap = mgr.snapshot()
        assert snap["bg_error_count"] == 1
        assert snap["paused"] == 1
        assert snap["errors_by_site"] == {"flush": 1}


# ---------------------------------------------------------------------------
# Filesystem capacity model (ENOSPC)
# ---------------------------------------------------------------------------

class TestCapacityModel:
    def test_append_rejected_before_any_mutation(self):
        env, _device, fs = fresh_stack()
        handle = drive(env, fs.create("f"))
        handle.append(b"x" * 100)
        fs.set_capacity(fs.total_allocated_bytes() + 10)
        with pytest.raises(DiskFullError):
            handle.append(b"y" * 200)
        # All-or-nothing: the failed append left no partial bytes.
        assert handle.size == 100
        assert drive(env, handle.read(0, 100)) == b"x" * 100

    def test_free_bytes_accounting(self):
        env, _device, fs = fresh_stack()
        handle = drive(env, fs.create("f"))
        fs.set_capacity(1 << 20)
        before = fs.free_bytes()
        handle.append(b"x" * 4096)
        assert fs.free_bytes() == before - 4096
        fs.set_capacity(None)
        assert fs.free_bytes() is None

    def test_punch_hole_frees_and_refill_charges(self):
        from repro.storage import PAGE_SIZE
        env, _device, fs = fresh_stack()
        handle = drive(env, fs.create("f"))
        handle.append(b"x" * (4 * PAGE_SIZE))
        allocated = fs.total_allocated_bytes()
        handle.punch_hole(0, 2 * PAGE_SIZE)
        assert fs.total_allocated_bytes() == allocated - 2 * PAGE_SIZE
        # Refilling a punched page must be charged against capacity.
        fs.set_capacity(fs.total_allocated_bytes() + 10)
        with pytest.raises(DiskFullError):
            handle.write_at(0, b"y" * PAGE_SIZE)


# ---------------------------------------------------------------------------
# Device retry accounting
# ---------------------------------------------------------------------------

class TestDeviceRetryAccounting:
    def _timed_read(self, fault_attempts):
        """Elapsed time for a read contending with a long write, where
        the read's first ``fault_attempts`` attempts hit EIO."""
        env, device, _fs = fresh_stack()
        state = {"left": fault_attempts}

        def hook(op):
            """Fault the next read attempt while the budget lasts."""
            if op == "read" and state["left"] > 0:
                state["left"] -= 1
                return True
            return False

        device.fault_hook = hook

        def scenario():
            # Occupy the channel so the read genuinely queues first
            # (SATA profile: parallelism 1, so the read finishes last).
            env.process(device.write(256 * KB, sequential=True))
            yield env.timeout(0)
            yield from device.read(4 * KB)
            return env.now

        return env.run_until(env.process(scenario())), device

    def test_retry_pays_device_time_but_queue_wait_once(self):
        base, device0 = self._timed_read(0)
        assert device0.stats.num_eio_retries == 0
        # Solo read cost on an idle device = the per-attempt service time.
        env, device, _fs = fresh_stack()
        env.run_until(env.process(device.read(4 * KB)))
        attempt = env.now

        faulted, device2 = self._timed_read(2)
        assert device2.stats.num_eio_retries == 2
        # Two retries add exactly two service times: the FIFO wait behind
        # the contending write is paid once, not once per attempt.
        assert faulted - base == pytest.approx(2 * attempt, rel=1e-6)

    def test_persistent_fault_raises_device_error(self):
        env, device, _fs = fresh_stack()
        device.fault_hook = lambda op: True
        with pytest.raises(DeviceError):
            env.run_until(env.process(device.read(4 * KB)))
        assert device.stats.num_eio_retries == device.max_eio_retries + 1

    def test_eio_retries_surface_in_unified_snapshot(self):
        env, device, fs = fresh_stack()
        options = small_options()
        db = LSMEngine.open_sync(env, fs, options, "db")
        eio = TransientEIO(1.0, random.Random(3), max_failures=2)
        device.fault_hook = eio
        drive(env, device.read(4 * KB))
        device.fault_hook = None
        snap = unified_snapshot(_Stack(env, device, fs), db)
        assert snap["health"]["eio_retries"] == 2
        assert snap["health"]["bg_error_count"] == 0
        assert snap["health"]["quarantined_tables"] == 0
        db.close_sync()


# ---------------------------------------------------------------------------
# Background-error unwind (regression: no wedged engine)
# ---------------------------------------------------------------------------

class TestBackgroundErrorUnwind:
    def test_compaction_failure_does_not_wedge_engine(self):
        env, _device, fs = fresh_stack()
        options = small_options(l0_compaction_trigger=2,
                                l0_slowdown_trigger=64, l0_stop_trigger=96)
        db = LSMEngine.open_sync(env, fs, options, "db")
        orig = db._run_compaction
        state = {"failed": False}

        def flaky(compaction):
            """Fail the first compaction, then behave normally."""
            if not state["failed"]:
                state["failed"] = True
                raise DeviceError("injected compaction failure")
            yield from orig(compaction)

        db._run_compaction = flaky
        rng = random.Random(5)
        for i in range(400):
            key = b"k%06d" % rng.randrange(512)
            drive(env, db.put(key, b"v" * 64))
        settle(env, rounds=3)
        drive(env, db.flush_all())

        assert state["failed"], "the injected failure never triggered"
        # The in-progress accounting and table locks were unwound: work
        # resumed, nothing is busy, and the writer path is healthy.
        assert db._compactions_in_progress == 0
        assert not db._flush_in_progress
        assert not db._busy_tables
        assert not db.health.degraded
        assert db.health.resume_attempts >= 1
        assert db.stats.compactions >= 1
        drive(env, db.put(b"after", b"ok"))
        assert drive(env, db.get(b"after")) == b"ok"
        db.close_sync()


# ---------------------------------------------------------------------------
# Read-only exactness property
# ---------------------------------------------------------------------------

class TestReadOnlyExactness:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_acked_survive_and_rejected_never_visible(self, seed):
        env, _device, fs = fresh_stack()
        options = small_options(memtable_size=4 * KB, wal_sync=True)
        db = LSMEngine.open_sync(env, fs, options, "db")
        rng = random.Random(seed)
        acked = {}
        rejected = []

        def put(i):
            key = b"user%04d" % rng.randrange(96)
            value = b"v%06d-" % i + b"x" * 48
            try:
                drive(env, db.put(key, value))
            except ReadOnlyError:
                rejected.append((key, value))
            else:
                acked[key] = value

        for i in range(120):
            put(i)
        fs.set_capacity(fs.total_allocated_bytes() + 512)
        for i in range(120, 200):
            put(i)
        assert rejected, "the capacity clamp never rejected a write"
        assert db.health.read_only

        # Degraded, but every acked write reads back exactly — and the
        # store still serves reads at all.
        for key, value in acked.items():
            assert drive(env, db.get(key)) == value

        fs.set_capacity(None)
        db.health.poke()
        settle(env)
        assert not db.health.degraded
        rejected_before = len(rejected)
        for i in range(200, 260):
            put(i)
        assert len(rejected) == rejected_before, (
            "writes were still rejected after capacity was restored")
        drive(env, db.flush_all())

        for key, value in acked.items():
            assert drive(env, db.get(key)) == value
        for key, value in rejected:
            assert drive(env, db.get(key)) != value, (
                "a write rejected in read-only mode became visible")
        db.close_sync()


# ---------------------------------------------------------------------------
# Scrubber: 100% detection, zero false positives, quarantine persistence
# ---------------------------------------------------------------------------

def _open_small(engine_key, env, fs, **overrides):
    spec = SYSTEMS[engine_key]
    options = spec.options(1024).copy(
        memtable_size=4 * KB, block_cache_bytes=8 * KB, **overrides)
    return spec.engine_cls.open_sync(env, fs, options, "db")


def _load(env, db, n=300, seed=9):
    rng = random.Random(seed)
    for i in range(n):
        drive(env, db.put(b"key%05d" % rng.randrange(n), b"v" * 64))
    drive(env, db.flush_all())


class TestScrubber:
    @pytest.mark.parametrize("engine_key",
                             ["leveldb", "rocksdb", "pebblesdb", "bolt"])
    def test_quarantines_every_corrupt_table(self, engine_key):
        env, _device, fs = fresh_stack()
        # Compaction disabled so every flushed table stays live at L0:
        # the corrupted set is exactly what the scrubber must find.
        db = _open_small(engine_key, env, fs, l0_compaction_trigger=32,
                         l0_slowdown_trigger=48, l0_stop_trigger=64)
        _load(env, db)
        live = sorted(db.versions.current.live_numbers().values(),
                      key=lambda m: m.number)
        assert len(live) >= 2, "need at least two live tables to corrupt"
        victims = [live[0], live[-1]]
        for meta in victims:
            handle = drive(env, fs.open(meta.container))
            handle.write_at(meta.offset + 12, b"\xde\xad\xbe\xef")

        scrubber = Scrubber(db)
        report = drive(env, scrubber.scrub_once())
        assert report.tables_checked == len(live)
        corrupt_numbers = {number for number, _c, _e in report.corrupt}
        assert corrupt_numbers == {m.number for m in victims}
        assert db._quarantined == corrupt_numbers
        # Reads resolved by a quarantined table fail fast, loudly.  The
        # newest table's smallest key is deterministic: no newer table
        # can shadow it, so the probe must reach the quarantined one.
        with pytest.raises(CorruptionError):
            drive(env, db.get(victims[-1].smallest))
        settle(env)  # let the quarantine MANIFEST records commit
        db.close_sync()

    @pytest.mark.parametrize("engine_key", ["leveldb", "bolt"])
    def test_zero_false_positives_across_seeds(self, engine_key):
        for seed in (1, 2, 3):
            env, _device, fs = fresh_stack()
            db = _open_small(engine_key, env, fs)
            _load(env, db, seed=seed)
            report = drive(env, Scrubber(db).scrub_once())
            assert report.tables_corrupt == 0
            assert not db._quarantined
            db.close_sync()

    def test_background_scrubber_runs_on_idle_budget(self):
        env, _device, fs = fresh_stack()
        db = _open_small("leveldb", env, fs, enable_scrubber=True,
                         scrub_interval=0.01, scrub_tables_per_round=2)
        _load(env, db, n=200)
        meta = next(iter(db.versions.current.live_numbers().values()))
        handle = drive(env, fs.open(meta.container))
        handle.write_at(meta.offset + 12, b"\xde\xad\xbe\xef")
        settle(env, delay=0.2, rounds=3)
        assert meta.number in db._quarantined
        assert db.scrubber is not None and db.scrubber.rounds > 0
        assert not db.health.degraded  # scrub corruption is soft
        db.close_sync()

    def test_quarantine_survives_reopen(self):
        env, _device, fs = fresh_stack()
        db = _open_small("leveldb", env, fs)
        # Small load -> exactly one table, so every read must resolve
        # through it and the fail-fast contract is unambiguous.
        _load(env, db, n=20)
        live = list(db.versions.current.live_numbers().values())
        assert len(live) == 1
        meta = live[0]
        handle = drive(env, fs.open(meta.container))
        handle.write_at(meta.offset + 12, b"\xde\xad\xbe\xef")
        report = drive(env, Scrubber(db).scrub_once())
        assert report.tables_corrupt == 1
        settle(env)  # commit the quarantine record
        db.close_sync()

        db2 = _open_small("leveldb", env, fs)
        assert meta.number in db2._quarantined
        with pytest.raises(CorruptionError):
            drive(env, db2.get(meta.smallest))
        db2.close_sync()


class TestManifestQuarantineCodec:
    def test_version_edit_roundtrip(self):
        edit = VersionEdit()
        edit.quarantine_file(7)
        edit.quarantine_file(123456)
        decoded = VersionEdit.decode(edit.encode())
        assert decoded.quarantined_files == [7, 123456]


# ---------------------------------------------------------------------------
# Chaos schedule end to end
# ---------------------------------------------------------------------------

class TestChaos:
    def test_chaos_smoke_all_engines(self):
        report = chaos_sweep(ChaosConfig(num_ops=200))
        assert report.ok, "\n".join(report.summary_lines())
        for result in report.results:
            assert result.entered_read_only
            assert result.recovered
            assert result.writes_rejected > 0
            assert result.reads > 0
