"""Tests for the log-bucketed latency histogram."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.histogram import LatencyHistogram
from repro.bench.metrics import percentile


class TestBasics:
    def test_empty(self):
        hist = LatencyHistogram()
        assert len(hist) == 0
        assert hist.mean == 0.0
        assert hist.percentile(99) == 0.0
        assert hist.render() == "(empty histogram)"

    def test_single_sample(self):
        hist = LatencyHistogram()
        hist.record(0.001)
        assert len(hist) == 1
        assert hist.mean == pytest.approx(0.001)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.001)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_latency=0)
        with pytest.raises(ValueError):
            LatencyHistogram(min_latency=1.0, max_latency=0.5)

    def test_out_of_range_clamped(self):
        hist = LatencyHistogram(min_latency=1e-6, max_latency=1.0)
        hist.record(1e-9)
        hist.record(50.0)
        assert len(hist) == 2
        assert hist.percentile(100) <= 50.0


class TestAccuracy:
    def test_percentiles_within_bucket_error(self):
        rng = random.Random(11)
        samples = [rng.uniform(1e-5, 1e-2) for _ in range(20_000)]
        hist = LatencyHistogram()
        hist.record_all(samples)
        for p in (50, 90, 99, 99.9):
            exact = percentile(samples, p)
            approx = hist.percentile(p)
            # 20 buckets/decade -> ~12% max relative bucket width.
            assert approx == pytest.approx(exact, rel=0.15)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=1e-6, max_value=10.0,
                              allow_nan=False), min_size=1, max_size=500))
    def test_percentile_monotone_and_bounded(self, samples):
        hist = LatencyHistogram()
        hist.record_all(samples)
        previous = 0.0
        for p in (1, 25, 50, 75, 90, 99, 100):
            value = hist.percentile(p)
            assert value >= previous
            previous = value
        assert hist.percentile(100) <= max(samples) * 1.13 + 1e-9

    def test_mean_exact(self):
        hist = LatencyHistogram()
        hist.record_all([0.001, 0.002, 0.003])
        assert hist.mean == pytest.approx(0.002)


class TestMerge:
    def test_merge_equals_union(self):
        rng = random.Random(3)
        a_samples = [rng.uniform(1e-5, 1e-3) for _ in range(1000)]
        b_samples = [rng.uniform(1e-4, 1e-2) for _ in range(1000)]
        merged = LatencyHistogram()
        merged.record_all(a_samples)
        shard = LatencyHistogram()
        shard.record_all(b_samples)
        merged.merge(shard)
        union = LatencyHistogram()
        union.record_all(a_samples + b_samples)
        assert len(merged) == len(union)
        for p in (50, 90, 99):
            assert merged.percentile(p) == pytest.approx(union.percentile(p))

    def test_mismatched_bucketing_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(buckets_per_decade=10))


class TestRender:
    def test_render_contains_bars(self):
        hist = LatencyHistogram()
        hist.record_all([1e-4] * 100 + [1e-3] * 10)
        text = hist.render(width=20)
        assert "count=110" in text
        assert "#" in text
