"""Tests for the log-bucketed latency histogram."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.histogram import LatencyHistogram
from repro.bench.metrics import percentile


class TestBasics:
    def test_empty(self):
        hist = LatencyHistogram()
        assert len(hist) == 0
        assert hist.mean == 0.0
        assert hist.percentile(99) == 0.0
        assert hist.render() == "(empty histogram)"

    def test_single_sample(self):
        hist = LatencyHistogram()
        hist.record(0.001)
        assert len(hist) == 1
        assert hist.mean == pytest.approx(0.001)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.001)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_latency=0)
        with pytest.raises(ValueError):
            LatencyHistogram(min_latency=1.0, max_latency=0.5)

    def test_out_of_range_clamped(self):
        hist = LatencyHistogram(min_latency=1e-6, max_latency=1.0)
        hist.record(1e-9)
        hist.record(50.0)
        assert len(hist) == 2
        assert hist.percentile(100) <= 50.0


class TestAccuracy:
    def test_percentiles_within_bucket_error(self):
        rng = random.Random(11)
        samples = [rng.uniform(1e-5, 1e-2) for _ in range(20_000)]
        hist = LatencyHistogram()
        hist.record_all(samples)
        for p in (50, 90, 99, 99.9):
            exact = percentile(samples, p)
            approx = hist.percentile(p)
            # 20 buckets/decade -> ~12% max relative bucket width.
            assert approx == pytest.approx(exact, rel=0.15)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=1e-6, max_value=10.0,
                              allow_nan=False), min_size=1, max_size=500))
    def test_percentile_monotone_and_bounded(self, samples):
        hist = LatencyHistogram()
        hist.record_all(samples)
        previous = 0.0
        for p in (1, 25, 50, 75, 90, 99, 100):
            value = hist.percentile(p)
            assert value >= previous
            previous = value
        assert hist.percentile(100) <= max(samples) * 1.13 + 1e-9

    def test_mean_exact(self):
        hist = LatencyHistogram()
        hist.record_all([0.001, 0.002, 0.003])
        assert hist.mean == pytest.approx(0.002)


class TestMerge:
    def test_merge_equals_union(self):
        rng = random.Random(3)
        a_samples = [rng.uniform(1e-5, 1e-3) for _ in range(1000)]
        b_samples = [rng.uniform(1e-4, 1e-2) for _ in range(1000)]
        merged = LatencyHistogram()
        merged.record_all(a_samples)
        shard = LatencyHistogram()
        shard.record_all(b_samples)
        merged.merge(shard)
        union = LatencyHistogram()
        union.record_all(a_samples + b_samples)
        assert len(merged) == len(union)
        for p in (50, 90, 99):
            assert merged.percentile(p) == pytest.approx(union.percentile(p))

    def test_mismatched_bucketing_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(buckets_per_decade=10))


class TestRender:
    def test_render_contains_bars(self):
        hist = LatencyHistogram()
        hist.record_all([1e-4] * 100 + [1e-3] * 10)
        text = hist.render(width=20)
        assert "count=110" in text
        assert "#" in text


def _reference_bucket_of(hist, latency):
    """The pre-rewrite log10 bucketing formula, verbatim.

    The fast-path rewrite (precomputed bounds + bisect) must agree with
    this for every float, including exact bucket-boundary values.
    """
    import math
    if latency <= hist.min_latency:
        return 0
    if latency >= hist.max_latency:
        return hist._num_buckets - 1
    position = (math.log10(latency / hist.min_latency)
                * hist.buckets_per_decade)
    return min(hist._num_buckets - 2, int(position) + 1)


class TestInsertPathEdgeCases:
    """Lock bucket assignment and summary stats against current outputs."""

    def test_empty_histogram_percentiles(self):
        hist = LatencyHistogram()
        for p in (0, 50, 99, 99.9, 100):
            assert hist.percentile(p) == 0.0
        assert hist.mean == 0.0
        assert hist.min == 0.0
        assert hist.max == 0.0
        assert hist.cdf() == [(50, 0.0), (90, 0.0), (99, 0.0), (99.9, 0.0)]

    def test_single_sample_every_percentile_is_its_bucket(self):
        hist = LatencyHistogram()
        hist.record(3.3e-4)
        values = {hist.percentile(p) for p in (0.1, 25, 50, 75, 99.9, 100)}
        assert len(values) == 1
        assert values.pop() == 3.3e-4  # capped at the recorded max

    def test_bucket_boundary_values_match_log_formula(self):
        hist = LatencyHistogram(min_latency=1e-6, max_latency=10.0,
                                buckets_per_decade=10)
        import math
        boundaries = [hist.min_latency * 10 ** (i / hist.buckets_per_decade)
                      for i in range(hist._num_buckets)]
        probes = []
        for b in boundaries:
            probes.extend([b, math.nextafter(b, 0.0),
                           math.nextafter(b, math.inf)])
        probes.extend([hist.min_latency, hist.max_latency,
                       math.nextafter(hist.min_latency, math.inf),
                       math.nextafter(hist.max_latency, 0.0)])
        for latency in probes:
            expected = _reference_bucket_of(hist, latency)
            before = list(hist._counts)
            hist.record(latency)
            after = list(hist._counts)
            changed = [i for i, (a, b2) in enumerate(zip(before, after))
                       if a != b2]
            assert changed == [expected], latency

    def test_random_samples_match_log_formula(self):
        rng = random.Random(1234)
        hist = LatencyHistogram()
        for _ in range(5000):
            latency = 10 ** rng.uniform(-7.5, 2.5)
            expected = _reference_bucket_of(hist, latency)
            count_before = hist._counts[expected]
            hist.record(latency)
            assert hist._counts[expected] == count_before + 1

    def test_merge_of_disjoint_histograms(self):
        lo, hi = LatencyHistogram(), LatencyHistogram()
        rng = random.Random(77)
        lo_samples = [rng.uniform(1e-6, 1e-4) for _ in range(500)]
        hi_samples = [rng.uniform(1e-2, 1.0) for _ in range(500)]
        lo.record_all(lo_samples)
        hi.record_all(hi_samples)
        union = LatencyHistogram()
        union.record_all(lo_samples)
        union.record_all(hi_samples)
        lo.merge(hi)
        assert lo._counts == union._counts
        assert len(lo) == 1000
        assert lo.mean == pytest.approx(union.mean)
        assert lo.min == union.min
        assert lo.max == union.max
        for p in (1, 50, 99, 99.9):
            assert lo.percentile(p) == union.percentile(p)

    def test_merge_into_empty_and_from_empty(self):
        empty, full = LatencyHistogram(), LatencyHistogram()
        full.record_all([1e-4, 2e-3, 0.5])
        snapshot = (list(full._counts), len(full), full.mean,
                    full.min, full.max)
        full.merge(empty)
        assert (list(full._counts), len(full), full.mean,
                full.min, full.max) == snapshot
        empty.merge(full)
        assert empty._counts == full._counts
        assert empty.percentile(50) == full.percentile(50)

    def test_record_all_equals_repeated_record(self):
        rng = random.Random(5)
        samples = [10 ** rng.uniform(-7, 2) for _ in range(2000)]
        one, two = LatencyHistogram(), LatencyHistogram()
        one.record_all(samples)
        for s in samples:
            two.record(s)
        assert one._counts == two._counts
        assert one._sum == two._sum  # bit-identical accumulation order
        assert (one.min, one.max, len(one)) == (two.min, two.max, len(two))
