"""Unit and property tests for the merge/collapse/scan helpers."""

from hypothesis import given, settings, strategies as st

from repro.lsm.codec import MAX_SEQUENCE, VALUE_TYPE_DELETION, VALUE_TYPE_VALUE
from repro.lsm.iterators import collapse_versions, merge_scan, merge_streams


def put(key, seq, value=b"v"):
    return (key, seq, VALUE_TYPE_VALUE, value)


def tomb(key, seq):
    return (key, seq, VALUE_TYPE_DELETION, b"")


class TestMergeStreams:
    def test_interleaves_sorted(self):
        left = [put(b"a", 1), put(b"c", 2)]
        right = [put(b"b", 3), put(b"d", 4)]
        merged = list(merge_streams([left, right]))
        assert [e[0] for e in merged] == [b"a", b"b", b"c", b"d"]

    def test_same_key_newest_first(self):
        old = [put(b"k", 3, b"old")]
        new = [put(b"k", 9, b"new")]
        merged = list(merge_streams([old, new]))
        assert [(e[1], e[3]) for e in merged] == [(9, b"new"), (3, b"old")]

    def test_empty_streams(self):
        assert list(merge_streams([])) == []
        assert list(merge_streams([[], [put(b"a", 1)]])) == [put(b"a", 1)]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.lists(st.tuples(st.binary(min_size=1, max_size=4),
                                       st.integers(1, 1000)),
                             max_size=30),
                    max_size=5))
    def test_merge_property(self, raw_streams):
        # Build internally-sorted streams with unique (key, seq) pairs.
        seen = set()
        streams = []
        for raw in raw_streams:
            entries = []
            for key, seq in raw:
                if (key, seq) in seen:
                    continue
                seen.add((key, seq))
                entries.append(put(key, seq))
            entries.sort(key=lambda e: (e[0], MAX_SEQUENCE - e[1]))
            streams.append(entries)
        merged = list(merge_streams(streams))
        expected = sorted((e for s in streams for e in s),
                          key=lambda e: (e[0], MAX_SEQUENCE - e[1]))
        assert merged == expected


class TestCollapseVersions:
    def test_keeps_newest_only(self):
        entries = [put(b"k", 9, b"new"), put(b"k", 3, b"old"), put(b"z", 1)]
        result = list(collapse_versions(entries, drop_tombstones=False))
        assert result == [put(b"k", 9, b"new"), put(b"z", 1)]

    def test_tombstone_kept_when_not_base(self):
        entries = [tomb(b"k", 9), put(b"k", 3)]
        result = list(collapse_versions(entries, drop_tombstones=False))
        assert result == [tomb(b"k", 9)]

    def test_tombstone_dropped_at_base(self):
        entries = [tomb(b"k", 9), put(b"k", 3), put(b"z", 1)]
        result = list(collapse_versions(entries, drop_tombstones=True))
        assert result == [put(b"z", 1)]

    def test_empty(self):
        assert list(collapse_versions([], drop_tombstones=True)) == []


class TestMergeScan:
    def test_basic_range(self):
        stream = [put(b"a", 1), put(b"b", 2), put(b"c", 3), put(b"d", 4)]
        result = merge_scan([stream], b"b", 2, MAX_SEQUENCE)
        assert result == [(b"b", b"v"), (b"c", b"v")]

    def test_tombstones_hide_older_versions(self):
        new = [tomb(b"b", 9)]
        old = [put(b"a", 1), put(b"b", 2), put(b"c", 3)]
        result = merge_scan([new, old], b"a", 10, MAX_SEQUENCE)
        assert result == [(b"a", b"v"), (b"c", b"v")]

    def test_snapshot_filters_future_writes(self):
        stream = [put(b"k", 9, b"future"), put(b"k", 2, b"past")]
        result = merge_scan([stream], b"a", 10, snapshot_seq=5)
        assert result == [(b"k", b"past")]

    def test_count_limit(self):
        stream = [put(b"%03d" % i, i + 1) for i in range(100)]
        result = merge_scan([stream], b"000", 7, MAX_SEQUENCE)
        assert len(result) == 7

    def test_start_key_inclusive(self):
        stream = [put(b"a", 1), put(b"b", 2)]
        assert merge_scan([stream], b"b", 5, MAX_SEQUENCE) == [(b"b", b"v")]

    @settings(max_examples=25, deadline=None)
    @given(st.dictionaries(st.binary(min_size=1, max_size=4),
                           st.binary(max_size=4), max_size=50),
           st.binary(min_size=1, max_size=4),
           st.integers(1, 20))
    def test_matches_sorted_dict(self, model, start, count):
        stream = sorted(
            (put(k, i + 1, v) for i, (k, v) in enumerate(model.items())),
            key=lambda e: (e[0], MAX_SEQUENCE - e[1]))
        result = merge_scan([stream], start, count, MAX_SEQUENCE)
        expected = sorted((k, v) for k, v in model.items() if k >= start)[:count]
        assert result == expected
