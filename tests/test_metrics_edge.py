"""Edge cases for the measurement utilities the figures depend on."""

import pytest

from repro.bench.metrics import LatencyRecorder, PhaseResult, percentile
from repro.lsm.engine import EngineStats


class TestPercentile:
    def test_empty_samples(self):
        assert percentile([], 50.0) == 0.0
        assert percentile([], 0.0) == 0.0
        assert percentile([], 100.0) == 0.0

    def test_single_sample_any_percentile(self):
        for p in (0.0, 0.1, 50.0, 99.9, 100.0):
            assert percentile([7.5], p) == 7.5

    def test_p0_is_min_p100_is_max(self):
        samples = [3.0, 1.0, 2.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, -5.0) == 1.0
        assert percentile(samples, 100.0) == 3.0
        assert percentile(samples, 150.0) == 3.0

    def test_nearest_rank_boundaries(self):
        samples = list(range(1, 11))  # 1..10
        # ceil(p/100 * 10) picks the nearest rank from above.
        assert percentile(samples, 50.0) == 5
        assert percentile(samples, 50.1) == 6
        assert percentile(samples, 10.0) == 1
        assert percentile(samples, 10.1) == 2
        assert percentile(samples, 90.0) == 9
        assert percentile(samples, 99.0) == 10

    def test_input_need_not_be_sorted(self):
        assert percentile([9.0, 1.0, 5.0], 50.0) == 5.0

    def test_tiny_percentile_clamps_to_first_rank(self):
        assert percentile([1.0, 2.0, 3.0], 1e-9) == 1.0


class TestLatencyRecorder:
    def test_empty_recorder(self):
        recorder = LatencyRecorder()
        assert recorder.count() == 0
        assert recorder.count("read") == 0
        assert recorder.samples() == []
        assert recorder.kinds() == []
        assert recorder.percentile(99.0) == 0.0
        assert recorder.mean() == 0.0
        assert recorder.cdf() == [(p, 0.0) for p, _ in recorder.cdf()]

    def test_per_kind_bookkeeping(self):
        recorder = LatencyRecorder()
        recorder.record("read", 1.0)
        recorder.record("read", 3.0)
        recorder.record("insert", 2.0)
        assert recorder.count() == 3
        assert recorder.count("read") == 2
        assert recorder.kinds() == ["insert", "read"]
        assert sorted(recorder.samples()) == [1.0, 2.0, 3.0]
        assert recorder.mean("read") == 2.0
        assert recorder.percentile(100.0, "read") == 3.0

    def test_samples_returns_a_copy(self):
        recorder = LatencyRecorder()
        recorder.record("read", 1.0)
        recorder.samples("read").append(99.0)
        recorder.samples().append(99.0)
        assert recorder.samples("read") == [1.0]
        assert recorder.count() == 1

    def test_cdf_is_monotone(self):
        recorder = LatencyRecorder()
        for value in (5.0, 1.0, 4.0, 2.0, 3.0):
            recorder.record("op", value)
        curve = recorder.cdf()
        latencies = [latency for _p, latency in curve]
        assert latencies == sorted(latencies)
        assert curve[-1][1] == 5.0

    def test_single_sample_cdf(self):
        recorder = LatencyRecorder()
        recorder.record("op", 0.25)
        assert all(latency == 0.25 for _p, latency in recorder.cdf())


class TestEngineStatsSnapshot:
    def test_snapshot_is_isolated_from_further_mutation(self):
        stats = EngineStats()
        stats.compactions = 3
        snap = stats.snapshot()
        stats.compactions += 7
        stats.stall_time += 1.5
        assert snap.compactions == 3
        assert snap.stall_time == 0.0
        assert stats.compactions == 10

    def test_snapshot_copies_every_field(self):
        stats = EngineStats()
        for name, value in vars(stats).items():
            setattr(stats, name, value + 1)
        snap = stats.snapshot()
        assert vars(snap) == vars(stats)
        for name in vars(stats):
            setattr(stats, name, getattr(stats, name) + 1)
        assert all(vars(snap)[name] == vars(stats)[name] - 1
                   for name in vars(stats))


def test_phase_result_derived_metrics_guard_zero_division():
    result = PhaseResult(system="x", workload="a", operations=0,
                         elapsed=0.0, latencies=LatencyRecorder())
    assert result.throughput == 0.0
    assert result.write_amplification == 0.0
    row = result.summary_row()
    assert row["kops"] == 0.0 and row["p99_ms"] == 0.0


def test_phase_result_write_amplification_prefers_user_bytes():
    result = PhaseResult(system="x", workload="a", operations=1,
                         elapsed=1.0, latencies=LatencyRecorder(),
                         bytes_written=100, logical_bytes=50, user_bytes=25)
    assert result.write_amplification == pytest.approx(4.0)
    result.user_bytes = 0
    assert result.write_amplification == pytest.approx(2.0)
