"""Tests for repro.objstore: tiered object storage for cold LSSTs.

Covers the simulated object store (determinism, cost model, PUT
atomicity), the bounded LSST cache (LRU eviction, single-flight
fetches), the tiering policy end to end on a BoLT engine (demotion,
reads through the cache, restore-from-object-store recovery and its
fixed point, orphan GC with the foreign-key defensive skip), the
tiering-off invariant (no tier section, no remote attachment), and the
checker's tier-pointer clause (dangling and torn objects are caught).
"""

import random

import pytest

from repro.bench.report import unified_snapshot
from repro.core import BoLTEngine, bolt_options
from repro.core.compaction_file import parse_container_number
from repro.faults.checker import CrashChecker
from repro.objstore import (
    LsstCache,
    ObjectStore,
    ObjectStoreError,
    RemoteProfile,
)
from repro.sim import Environment
from repro.storage import BlockDevice, PageCache, SimFS

KB = 1 << 10
SCALE = 1024


def fresh_stack():
    env = Environment()
    device = BlockDevice(env)
    fs = SimFS(env, device, PageCache(16 << 20))
    return env, device, fs


def drive(env, gen):
    """Run a coroutine to completion on ``env`` and return its value."""
    return env.run_until(env.process(gen))


def tiered_options(**overrides):
    """BoLT options sized so a small workload demotes aggressively."""
    base = bolt_options(SCALE)
    small = dict(tiering_enabled=True, tier_cold_level=1,
                 tier_cache_bytes=256 * KB,
                 memtable_size=max(1, base.memtable_size // 32),
                 level1_max_bytes=max(1, base.level1_max_bytes // 4))
    small.update(overrides)
    return base.copy(**small)


def load_random(env, db, n=2500, keyspace=1200, seed=11, value_size=80):
    rng = random.Random(seed)
    model = {}

    def writer():
        for i in range(n):
            key = b"user%08d" % rng.randrange(keyspace)
            value = b"v" * value_size + b"%d" % i
            model[key] = value
            yield from db.put(key, value)
        yield from db.flush_all()

    env.run_until(env.process(writer()))
    return model


# ---------------------------------------------------------------------------
# ObjectStore
# ---------------------------------------------------------------------------

class TestObjectStore:
    def test_put_get_roundtrip_and_costs(self):
        env, _device, _fs = fresh_stack()
        store = ObjectStore(env, seed=3)
        drive(env, store.put("db/000001.cf", b"x" * 1000))
        assert store.exists("db/000001.cf")
        assert store.object_length("db/000001.cf") == 1000
        assert drive(env, store.get("db/000001.cf")) == b"x" * 1000
        assert store.stats.puts == 1 and store.stats.gets == 1
        assert store.stats.bytes_in == 1000 and store.stats.bytes_out == 1000
        profile = store.profile
        assert store.stats.request_dollars == pytest.approx(
            profile.put_dollars + profile.get_dollars)
        # Storage accrues with virtual time at the profile's GB-month rate.
        before = store.storage_dollars()
        drive(env, _sleep(env, 3600.0))
        assert store.storage_dollars() > before

    def test_get_missing_raises(self):
        env, _device, _fs = fresh_stack()
        store = ObjectStore(env)
        with pytest.raises(ObjectStoreError):
            drive(env, store.get("db/000009.cf"))

    def test_deterministic_for_fixed_seed(self):
        def run():
            env, _device, _fs = fresh_stack()
            store = ObjectStore(env, seed=42)
            for i in range(8):
                drive(env, store.put("db/%06d.cf" % i, b"d" * (100 * (i + 1))))
                drive(env, store.get("db/%06d.cf" % i))
            return env.now, store.stats.get_latencies

        assert run() == run()

    def test_bandwidth_pipe_is_shared(self):
        """Two large concurrent PUTs serialize on the bandwidth ceiling."""
        env, _device, _fs = fresh_stack()
        store = ObjectStore(env, RemoteProfile(jitter=0.0), seed=0)
        nbytes = 10_000_000  # 0.1 s of pipe each at 100 MB/s
        procs = [env.process(store.put("db/%06d.cf" % i, b"z" * nbytes))
                 for i in range(2)]
        env.run_until(env.all_of(procs))
        # Serialized transfers: 2 * 0.1 s of pipe + one latency overlap.
        assert env.now >= 2 * nbytes / store.profile.bandwidth

    def test_delete_is_idempotent(self):
        env, _device, _fs = fresh_stack()
        store = ObjectStore(env)
        drive(env, store.put("db/000001.cf", b"abc"))
        drive(env, store.delete("db/000001.cf"))
        drive(env, store.delete("db/000001.cf"))
        assert not store.exists("db/000001.cf")
        assert store.stored_bytes == 0

    def test_list_keys_prefix(self):
        env, _device, _fs = fresh_stack()
        store = ObjectStore(env, objects={"db/000002.cf": b"a",
                                          "db/000001.cf": b"b",
                                          "other/000003.cf": b"c"})
        keys = drive(env, store.list_keys("db/"))
        assert keys == ["db/000001.cf", "db/000002.cf"]


def _sleep(env, delay):
    yield env.timeout(delay)


# ---------------------------------------------------------------------------
# LsstCache
# ---------------------------------------------------------------------------

class TestLsstCache:
    def _cache(self, capacity=4 * KB, objects=None):
        env, _device, fs = fresh_stack()
        store = ObjectStore(env, seed=5, objects=objects or {})
        return env, fs, store, LsstCache(fs, store, "db", capacity)

    def test_miss_fetches_then_hits_locally(self):
        objects = {"db/000001.cf": b"p" * 500}
        env, fs, store, cache = self._cache(objects=objects)
        handle = drive(env, cache.ensure("db/000001.cf"))
        assert drive(env, handle.read(0, 500)) == b"p" * 500
        drive(env, cache.ensure("db/000001.cf"))
        assert cache.hits == 1 and cache.misses == 1
        assert store.stats.gets == 1  # the hit never touched the store

    def test_single_flight_coalesces_concurrent_fetches(self):
        objects = {"db/000001.cf": b"p" * 500}
        env, fs, store, cache = self._cache(objects=objects)
        procs = [env.process(cache.ensure("db/000001.cf")) for _ in range(3)]
        env.run_until(env.all_of(procs))
        assert store.stats.gets == 1
        assert cache.misses == 1
        assert cache.single_flight_waits == 2

    def test_lru_evicts_and_unlinks(self):
        objects = {"db/%06d.cf" % i: b"e" * 1000 for i in range(3)}
        env, fs, store, cache = self._cache(capacity=1500, objects=objects)
        for i in range(3):
            drive(env, cache.ensure("db/%06d.cf" % i))
        assert cache.evictions == 2
        assert not fs.exists("db/objcache/000000.cf")
        assert not fs.exists("db/objcache/000001.cf")
        assert fs.exists("db/objcache/000002.cf")

    def test_cache_files_live_under_objcache(self):
        objects = {"db/000007.cf": b"q" * 64}
        env, fs, store, cache = self._cache(objects=objects)
        drive(env, cache.ensure("db/000007.cf"))
        assert cache.local_name("db/000007.cf") == "db/objcache/000007.cf"
        assert fs.exists("db/objcache/000007.cf")
        assert not fs.exists("db/000007.cf")  # never shadows the real name


# ---------------------------------------------------------------------------
# parse_container_number (the defensive foreign-key skip)
# ---------------------------------------------------------------------------

class TestParseContainerNumber:
    def test_accepts_container_names(self):
        assert parse_container_number("db/000012.cf") == 12
        assert parse_container_number("000003.cf") == 3

    def test_rejects_foreign_keys(self):
        assert parse_container_number("db/MANIFEST-000001") is None
        assert parse_container_number("db/000012.ldb") is None
        assert parse_container_number("db/000012.cf.bak") is None
        assert parse_container_number("db/backup.tgz") is None
        assert parse_container_number("db/00a0.cf") is None
        assert parse_container_number("db/.cf") is None


# ---------------------------------------------------------------------------
# Tiering end to end on a BoLT engine
# ---------------------------------------------------------------------------

class TestTieringEndToEnd:
    def _tiered_db(self, fs_env=None, **overrides):
        env, _device, fs = fs_env or fresh_stack()
        db = BoLTEngine.open_sync(env, fs, tiered_options(**overrides), "db")
        return env, fs, db

    def test_demotion_moves_cold_containers_remote(self):
        env, fs, db = self._tiered_db()
        model = load_random(env, db)
        drive(env, db.wait_idle())
        tiering = db.tiering
        assert tiering.demotions > 0
        remote = db.versions.current.remote_containers
        assert remote
        # Demoted locals are unlinked once no read is in flight; the
        # object store holds each container at its recorded length.
        for container, (length, _crc) in remote.items():
            assert fs.remote.object_length(container) == length
        # Reads still return exactly the model, through the cache.
        for key in sorted(model)[:200]:
            assert db.get_sync(key) == model[key]

    def test_reads_route_through_cache_after_unlink(self):
        env, fs, db = self._tiered_db()
        model = load_random(env, db)
        drive(env, db.wait_idle())
        remote = [c for c in db.versions.current.remote_containers
                  if not fs.exists(c)]
        assert remote  # at least one demoted local got unlinked
        for key in sorted(model):
            assert db.get_sync(key) == model[key]
        assert db.tiering.cache.misses > 0

    def test_restore_from_object_store_and_fixed_point(self):
        """Satellite: cold-cache reopen, and reopen-of-reopen fixed point."""
        env, fs, db = self._tiered_db()
        model = load_random(env, db)
        drive(env, db.wait_idle())
        assert db.tiering.demotions > 0
        expected = db.scan_sync(b"", len(model) + 64)
        db.close_sync()
        fs.crash(survive_probability=0.0)  # cache dies, objects survive
        db2 = BoLTEngine.open_sync(env, fs, tiered_options(), "db")
        first = db2.scan_sync(b"", len(model) + 64)
        assert first == expected
        assert db2.tiering.cache.misses > 0  # really fetched from remote
        db2.close_sync()
        fs.crash(survive_probability=0.0)
        db3 = BoLTEngine.open_sync(env, fs, tiered_options(), "db")
        second = db3.scan_sync(b"", len(model) + 64)
        assert second == first  # recovery is a fixed point
        db3.close_sync()

    def test_recover_gc_collects_orphans_and_skips_foreign_keys(self):
        env, fs, db = self._tiered_db()
        load_random(env, db)
        drive(env, db.wait_idle())
        assert db.tiering.demotions > 0
        store = fs.remote
        # An orphan: a PUT whose demotion edit never committed.
        drive(env, store.put("db/999999.cf", b"orphan"))
        # Foreign keys under the prefix: never container names, so the
        # GC must skip them (the remote twin of read_wal_tail's skip).
        drive(env, store.put("db/backup.tgz", b"ops"))
        drive(env, store.put("db/MANIFEST-000001", b"copy"))
        db.close_sync()
        fs.crash(survive_probability=0.0)
        db2 = BoLTEngine.open_sync(env, fs, tiered_options(), "db")
        assert not store.exists("db/999999.cf")
        assert store.exists("db/backup.tgz")
        assert store.exists("db/MANIFEST-000001")
        assert db2.tiering.orphans_collected == 1
        assert db2.tiering.foreign_objects_skipped == 2
        db2.close_sync()

    def test_release_keeps_pointer_while_referenced(self):
        env, fs, db = self._tiered_db()
        load_random(env, db)
        drive(env, db.wait_idle())
        tiering = db.tiering
        remote = sorted(db.versions.current.remote_containers)
        assert remote
        container = remote[0]
        # Still referenced by live tables: maybe_release claims the
        # container (True) but must not drop the pointer or the object.
        assert drive(env, tiering.maybe_release(container, db._meter()))
        assert db.versions.current.is_remote(container)
        assert fs.remote.exists(container)
        # A container that was never demoted is not its business.
        assert not drive(env, tiering.maybe_release("db/000000.cf",
                                                    db._meter()))

    def test_snapshot_reports_tier_section(self):
        env, fs, db = self._tiered_db()
        load_random(env, db)
        drive(env, db.wait_idle())

        class _Stack:
            pass

        stack = _Stack()
        stack.env, stack.fs, stack.device = env, fs, fs.device
        snap = unified_snapshot(stack, db)
        tier = snap["tier"]
        assert tier["demotions"] == db.tiering.demotions
        assert tier["remote_containers"] > 0
        assert tier["cache_hit_rate"] >= 0.0
        assert tier["remote_dollars_spent"] > 0.0

    def test_tiering_off_leaves_no_trace(self):
        env, _device, fs = fresh_stack()
        db = BoLTEngine.open_sync(env, fs, bolt_options(SCALE), "db")
        load_random(env, db, n=400)
        assert db.tiering is None
        assert fs.remote is None

        class _Stack:
            pass

        stack = _Stack()
        stack.env, stack.fs, stack.device = env, fs, fs.device
        assert "tier" not in unified_snapshot(stack, db)
        db.close_sync()

    def test_tiering_requires_compaction_files(self):
        from repro.engines import LevelDBEngine, leveldb_options
        env, _device, fs = fresh_stack()
        options = leveldb_options(SCALE).copy(tiering_enabled=True)
        with pytest.raises(ValueError):
            LevelDBEngine.open_sync(env, fs, options, "db")


# ---------------------------------------------------------------------------
# Checker clause 5: tier pointers are sound
# ---------------------------------------------------------------------------

class TestTierPointerClause:
    def _demoted_db(self):
        env, _device, fs = fresh_stack()
        db = BoLTEngine.open_sync(env, fs, tiered_options(), "db")
        load_random(env, db)
        drive(env, db.wait_idle())
        assert db.versions.current.remote_containers
        return env, fs, db

    def test_clean_store_has_no_violations(self):
        env, fs, db = self._demoted_db()
        checker = CrashChecker(BoLTEngine, tiered_options(), "db")
        label = dict(site="test", model="none")
        assert checker._check_tier_refs(fs, db, label) == []

    def test_dangling_pointer_is_caught(self):
        env, fs, db = self._demoted_db()
        container = sorted(db.versions.current.remote_containers)[0]
        del fs.remote.objects[container]
        checker = CrashChecker(BoLTEngine, tiered_options(), "db")
        violations = checker._check_tier_refs(
            fs, db, dict(site="test", model="none"))
        assert [v.kind for v in violations] == ["dangling-tier-pointer"]

    def test_torn_object_is_caught(self):
        env, fs, db = self._demoted_db()
        container = sorted(db.versions.current.remote_containers)[0]
        data = fs.remote.objects[container]
        fs.remote.objects[container] = data[:-1] + bytes([data[-1] ^ 0xFF])
        checker = CrashChecker(BoLTEngine, tiered_options(), "db")
        violations = checker._check_tier_refs(
            fs, db, dict(site="test", model="none"))
        assert [v.kind for v in violations] == ["torn-tier-object"]
