"""Observability subsystem: tracer core, exporters, instrumentation.

The two load-bearing guarantees tested here:

1. **The paper's barrier arithmetic is visible in traces** — a stock
   LevelDB compaction emits N+1 barrier spans (one fsync per output
   table + MANIFEST), a BoLT compaction exactly 2 (compaction file +
   MANIFEST), §1/§3.1.
2. **Tracing is free when disabled and inert when enabled** — it never
   advances the virtual clock, so EngineStats and every fs/device
   counter are identical with tracing on and off.
"""

import json

import pytest

from repro.bench import BenchConfig, SYSTEMS, new_stack, run_suite, unified_snapshot
from repro.obs import (
    MetricsRegistry,
    NULL_TRACER,
    NullTracer,
    Tracer,
    chrome_trace_events,
    phase_summary,
    summary_rows,
    write_chrome_trace,
)
from repro.sim import Environment
from repro.tools.traceview import summarize_trace, thread_rows


def tiny_config(**overrides) -> BenchConfig:
    overrides.setdefault("scale", 256)
    overrides.setdefault("record_count", 3000)
    overrides.setdefault("ops_per_phase", 600)
    return BenchConfig(**overrides)


def traced_suite(key: str):
    tracer = Tracer()
    results = run_suite(SYSTEMS[key], tiny_config(),
                        workloads=("load_a", "a"), tracer=tracer)
    return tracer, results


@pytest.fixture(scope="module")
def bolt_trace():
    return traced_suite("bolt")


@pytest.fixture(scope="module")
def leveldb_trace():
    return traced_suite("leveldb")


# -- tracer core -------------------------------------------------------------


class TestTracerCore:
    def test_span_records_virtual_time(self):
        env = Environment(tracer=Tracer())
        tracer = env.tracer

        def proc():
            yield env.timeout(1.0)
            with tracer.span("work", cat="test", track="t", step=1):
                yield env.timeout(2.5)

        env.run_until(env.process(proc()))
        (span,) = tracer.find_spans(name="work")
        assert span.start == pytest.approx(1.0)
        assert span.end == pytest.approx(3.5)
        assert span.duration == pytest.approx(2.5)
        assert span.args == {"step": 1}

    def test_nested_spans_and_containment(self):
        env = Environment(tracer=Tracer())
        tracer = env.tracer

        def proc():
            with tracer.span("outer", track="t"):
                yield env.timeout(1.0)
                with tracer.span("inner", track="t"):
                    yield env.timeout(1.0)
                yield env.timeout(1.0)

        env.run_until(env.process(proc()))
        (outer,) = tracer.find_spans(name="outer")
        (inner,) = tracer.find_spans(name="inner")
        assert inner.contains(inner)
        assert outer.contains(inner)
        assert not inner.contains(outer)
        assert tracer.spans_within(outer) == [inner]

    def test_span_set_updates_args(self):
        tracer = Tracer()
        with tracer.span("s", track="t") as span:
            span.set(outputs=3)
        assert tracer.spans[0].args == {"outputs": 3}

    def test_instants_and_counters(self):
        env = Environment(tracer=Tracer())
        tracer = env.tracer
        tracer.instant("mark", cat="test", track="t", detail=7)
        tracer.count("hits")
        tracer.count("hits", 2)
        tracer.gauge("depth", 4.0)
        assert tracer.instants[0].name == "mark"
        assert tracer.instants[0].args == {"detail": 7}
        assert tracer.metrics.counter("hits").value == 3
        assert tracer.metrics.gauge("depth").value == 4.0
        assert [s.value for s in tracer.counter_samples
                if s.name == "hits"] == [1, 3]

    def test_metrics_registry_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("a").add(2)
        registry.gauge("b").set(9.5)
        assert registry.snapshot() == {"a": 2, "b": 9.5}

    def test_attach_keeps_time_monotonic_across_stacks(self):
        tracer = Tracer()
        env1 = Environment(tracer=tracer)

        def busy(env):
            with tracer.span("phase", track="t"):
                yield env.timeout(5.0)

        env1.run_until(env1.process(busy(env1)))
        env2 = Environment(tracer=tracer)  # fresh clock restarts at 0
        env2.run_until(env2.process(busy(env2)))
        first, second = tracer.find_spans(name="phase")
        assert first.end == pytest.approx(5.0)
        assert second.start >= first.end
        assert second.duration == pytest.approx(5.0)

    def test_null_tracer_is_free_and_shared(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        span_a = NULL_TRACER.span("anything", cat="x", arbitrary=1)
        span_b = NULL_TRACER.span("other")
        assert span_a is span_b  # one reusable no-op object, no allocation
        with span_a as span:
            span.set(ignored=True)
        NULL_TRACER.instant("nothing")
        NULL_TRACER.count("nothing")
        assert NULL_TRACER.attach(Environment()) is NULL_TRACER

    def test_environment_defaults_to_null_tracer(self):
        assert Environment().tracer is NULL_TRACER

    def test_options_tracer_installs_on_environment(self):
        tracer = Tracer()
        stack = new_stack(tiny_config())
        spec = SYSTEMS["bolt"]
        options = spec.options(256).copy(tracer=tracer)
        db = spec.engine_cls.open_sync(stack.env, stack.fs, options, "db")
        assert stack.env.tracer is tracer
        db.put_sync(b"k", b"v")
        assert tracer.find_spans(cat="engine") or tracer.spans  # recording


# -- the paper's barrier arithmetic ------------------------------------------


def barrier_counts(tracer):
    """[(outputs, settled, barrier spans inside)] per compaction span."""
    rows = []
    for compaction in tracer.find_spans(name="compaction"):
        barriers = tracer.spans_within(compaction, cat="barrier")
        rows.append((compaction.args.get("outputs", 0),
                     compaction.args.get("settled", 0),
                     len(barriers)))
    return rows


def test_leveldb_compaction_pays_n_plus_one_barriers(leveldb_trace):
    tracer, _ = leveldb_trace
    rows = barrier_counts(tracer)
    assert rows, "workload produced no compactions"
    assert any(outputs > 1 for outputs, _, _ in rows), \
        "need a multi-output compaction for N+1 to differ from 2"
    for outputs, _settled, barriers in rows:
        # One fsync per output SSTable + the MANIFEST commit (§1).
        assert barriers == outputs + 1


def test_bolt_compaction_pays_exactly_two_barriers(bolt_trace):
    tracer, _ = bolt_trace
    rows = barrier_counts(tracer)
    assert rows, "workload produced no compactions"
    assert any(outputs > 1 for outputs, _, _ in rows), \
        "need a multi-output compaction for '2' to be a real reduction"
    for outputs, _settled, barriers in rows:
        if outputs:
            # Compaction-file seal + MANIFEST commit — never more (§3.1).
            assert barriers == 2
        else:
            # Settled-only compaction: MANIFEST commit alone (§3.4).
            assert barriers == 1


def test_bolt_flushes_and_manifest_commits_are_traced(bolt_trace):
    tracer, _ = bolt_trace
    assert tracer.find_spans(name="flush", cat="engine")
    assert tracer.find_spans(name="manifest.commit", cat="engine")
    assert tracer.find_spans(name="fsync", cat="barrier")
    assert tracer.metrics.counter("fd_cache.hit").value > 0


# -- tracing must not perturb the simulation ---------------------------------


def run_fixed_workload(tracer):
    """A deterministic direct-API workload; returns every observable."""
    config = tiny_config(record_count=2000)
    stack = new_stack(config)
    spec = SYSTEMS["bolt"]
    options = spec.options(config.scale)
    if tracer is not None:
        options = options.copy(tracer=tracer)
    db = spec.engine_cls.open_sync(stack.env, stack.fs, options, "db")
    for i in range(2000):
        db.put_sync(b"key%07d" % (i * 13 % 500), b"v" * 128)
        if i % 5 == 0:
            db.get_sync(b"key%07d" % (i % 500))
    stack.env.run_until(stack.env.process(db.flush_all()))
    db.close_sync()
    return (vars(db.stats.snapshot()), vars(stack.fs.stats.snapshot()),
            vars(stack.device.stats.snapshot()), stack.env.now)


def test_tracing_on_vs_off_identical_stats():
    baseline = run_fixed_workload(None)
    tracer = Tracer()
    traced = run_fixed_workload(tracer)
    assert tracer.spans, "tracer was supposed to observe the run"
    assert baseline == traced  # stats, counters AND the virtual clock


def test_tracing_on_vs_off_identical_suite_results():
    plain = run_suite(SYSTEMS["leveldb"], tiny_config(record_count=1500),
                      workloads=("load_a",))
    traced = run_suite(SYSTEMS["leveldb"], tiny_config(record_count=1500),
                       workloads=("load_a",), tracer=Tracer())
    for phase in plain:
        before, after = plain[phase], traced[phase]
        assert before.elapsed == after.elapsed
        assert before.fsync_calls == after.fsync_calls
        assert before.bytes_written == after.bytes_written
        assert before.compactions == after.compactions
        assert before.latencies.samples() == after.latencies.samples()


# -- exporters ----------------------------------------------------------------


def test_chrome_trace_events_shape(bolt_trace):
    tracer, _ = bolt_trace
    events = chrome_trace_events(tracer)
    assert events, "trace should not be empty"
    json.dumps(events)  # serializable as-is
    phases = {event["ph"] for event in events}
    assert {"M", "X"} <= phases
    names = {event["name"] for event in events if event["ph"] == "X"}
    assert {"flush", "compaction", "fsync", "dev.barrier"} <= names
    for event in events:
        assert event["pid"] == 1
        if event["ph"] == "X":
            assert event["ts"] >= 0 and event["dur"] >= 0

    thread_names = {event["args"]["name"] for event in events
                    if event["ph"] == "M" and event["name"] == "thread_name"}
    assert thread_names, "expected per-process track names"


def test_write_chrome_trace_file(tmp_path, leveldb_trace):
    tracer, _ = leveldb_trace
    path = tmp_path / "trace.json"
    write_chrome_trace(tracer, path)
    data = json.loads(path.read_text())
    assert isinstance(data["traceEvents"], list) and data["traceEvents"]
    assert data["displayTimeUnit"] == "ms"


def test_run_suite_trace_argument_writes_file(tmp_path):
    path = tmp_path / "suite.json"
    run_suite(SYSTEMS["bolt"], tiny_config(record_count=1500),
              workloads=("load_a",), trace=str(path))
    events = json.loads(path.read_text())["traceEvents"]
    names = {event["name"] for event in events if event["ph"] == "X"}
    assert "flush" in names and "fsync" in names
    assert any(event.get("name") == "phase-start" for event in events)


def test_phase_summary_and_rows(bolt_trace):
    tracer, _ = bolt_trace
    rows = summary_rows(tracer)
    assert rows[0]["total_ms"] == max(row["total_ms"] for row in rows)
    text = phase_summary(tracer)
    assert "compaction" in text and "fsync" in text
    assert "fd_cache.hit" in text  # metrics section


def test_traceview_summarizes_written_trace(tmp_path, bolt_trace):
    tracer, _ = bolt_trace
    path = tmp_path / "view.json"
    write_chrome_trace(tracer, path)
    events = json.loads(path.read_text())["traceEvents"]
    rows = summarize_trace(events)
    by_name = {row["name"]: row for row in rows}
    assert by_name["compaction"]["count"] == len(
        tracer.find_spans(name="compaction"))
    barrier_only = summarize_trace(events, cat="barrier")
    assert {row["name"] for row in barrier_only} <= {"fsync", "fdatasync"}
    tracks = thread_rows(events)
    assert tracks and all(row["spans"] > 0 for row in tracks)


def test_traceview_cli(tmp_path, bolt_trace, capsys):
    from repro.tools import traceview

    tracer, _ = bolt_trace
    path = tmp_path / "cli.json"
    write_chrome_trace(tracer, path)
    rows = traceview.main([str(path), "--slowest", "3", "--threads"])
    out = capsys.readouterr().out
    assert rows and "compaction" in out and "slowest 3 spans" in out


# -- unified snapshot ---------------------------------------------------------


def test_unified_snapshot_sections():
    config = tiny_config(record_count=500)
    tracer = Tracer()
    stack = new_stack(config, tracer=tracer)
    spec = SYSTEMS["bolt"]
    db = spec.engine_cls.open_sync(stack.env, stack.fs, spec.options(256), "db")
    for i in range(500):
        db.put_sync(b"k%06d" % i, b"v" * 64)
    stack.env.run_until(stack.env.process(db.flush_all()))
    snap = unified_snapshot(stack, db)
    assert set(snap) == {"clock", "device", "fs", "engine", "health",
                         "metrics"}
    # simcheck: waive[SIM004] - snapshot must equal the clock exactly
    assert snap["clock"]["virtual_seconds"] == stack.env.now
    assert snap["fs"]["num_barrier_calls"] == stack.fs.stats.num_barrier_calls
    assert snap["engine"]["compactions"] == db.stats.compactions
    assert snap["device"]["bytes_written"] == stack.device.stats.bytes_written
    assert snap["metrics"] == tracer.metrics.snapshot()


def test_unified_snapshot_without_tracer_or_db():
    stack = new_stack(tiny_config())
    snap = unified_snapshot(stack)
    assert set(snap) == {"clock", "device", "fs"}  # no engine, no metrics
