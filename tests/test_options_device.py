"""Tests for Options scaling/validation and DeviceProfile scaling."""

import pytest

from repro.lsm import LEVELDB_FORMAT, Options, ROCKSDB_FORMAT
from repro.storage import SATA_SSD

MB = 1 << 20


class TestOptionsValidation:
    def test_defaults_valid(self):
        Options().validate()

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            Options(memtable_size=0).validate()

    def test_slowdown_above_stop_rejected(self):
        with pytest.raises(ValueError):
            Options(l0_slowdown_trigger=20, l0_stop_trigger=10).validate()

    def test_stop_below_compaction_trigger_rejected(self):
        with pytest.raises(ValueError):
            Options(l0_compaction_trigger=8, l0_slowdown_trigger=2,
                    l0_stop_trigger=4).validate()

    def test_stop_below_trigger_ok_when_stop_disabled(self):
        Options(l0_compaction_trigger=8, l0_slowdown_trigger=2,
                l0_stop_trigger=4, enable_l0_stop=False).validate()

    def test_too_few_levels_rejected(self):
        with pytest.raises(ValueError):
            Options(max_levels=1).validate()


class TestOptionsScaling:
    def test_byte_fields_divide(self):
        options = Options(memtable_size=64 * MB, sstable_size=2 * MB,
                          level1_max_bytes=10 * MB).scaled(64)
        assert options.memtable_size == MB
        assert options.sstable_size == 2 * MB // 64
        assert options.level1_max_bytes == 10 * MB // 64

    def test_counts_and_triggers_unchanged(self):
        options = Options().scaled(256)
        assert options.l0_slowdown_trigger == Options().l0_slowdown_trigger
        assert options.max_open_files == Options().max_open_files
        assert options.level_size_multiplier == 10

    def test_slowdown_sleep_scales(self):
        options = Options(slowdown_sleep=1e-3).scaled(100)
        assert options.slowdown_sleep == pytest.approx(1e-5)

    def test_scale_one_is_identity_for_bytes(self):
        assert Options().scaled(1).memtable_size == Options().memtable_size

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            Options().scaled(0)

    def test_max_bytes_for_level_grows_exponentially(self):
        options = Options(level1_max_bytes=10, level_size_multiplier=10)
        assert options.max_bytes_for_level(1) == 10
        assert options.max_bytes_for_level(2) == 100
        assert options.max_bytes_for_level(3) == 1000
        assert options.max_bytes_for_level(0) == float("inf")

    def test_copy_overrides(self):
        options = Options().copy(sstable_size=12345)
        assert options.sstable_size == 12345
        assert Options().sstable_size != 12345


class TestTableFormats:
    def test_paper_overheads(self):
        """§4.3.3: ~100 extra bytes/record for LevelDB, ~24 for RocksDB."""
        assert LEVELDB_FORMAT.per_record_overhead == 100
        assert ROCKSDB_FORMAT.per_record_overhead == 24


class TestDeviceScaling:
    def test_fixed_costs_shrink_bandwidth_constant(self):
        scaled = SATA_SSD.scaled(256)
        assert scaled.seq_write_bw == SATA_SSD.seq_write_bw
        assert scaled.seq_read_bw == SATA_SSD.seq_read_bw
        assert scaled.barrier_latency == pytest.approx(
            SATA_SSD.barrier_latency / 256)
        assert scaled.rand_read_latency == pytest.approx(
            SATA_SSD.rand_read_latency / 256)
        assert scaled.write_ramp_bytes == SATA_SSD.write_ramp_bytes // 256

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            SATA_SSD.scaled(0)

    def test_barrier_ramp_penalty_bounded(self, env, run):
        """A barrier's ramp penalty saturates at write_ramp_bytes: big
        flushes approach full bandwidth."""
        from repro.storage import BlockDevice
        from repro.sim import Environment

        def flush_time(nbytes):
            local_env = Environment()
            dev = BlockDevice(local_env, SATA_SSD)
            local_env.run_until(local_env.process(dev.barrier(nbytes)))
            return local_env.now

        ramp = SATA_SSD.write_ramp_bytes
        small_efficiency = (1 * MB) / (flush_time(1 * MB)
                                       * SATA_SSD.seq_write_bw)
        big_efficiency = (64 * MB) / (flush_time(64 * MB)
                                      * SATA_SSD.seq_write_bw)
        assert small_efficiency < 0.6      # shallow queue: ~half speed
        assert big_efficiency > 0.85       # saturated
