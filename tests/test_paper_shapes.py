"""Qualitative paper-shape assertions (DESIGN.md §4).

These are the reproduction's acceptance tests: small-scale versions of
the relationships the paper's figures report.  They assert *orderings*
("who wins") and generous bands around factors, not absolute numbers —
the substrate is a simulator, not the authors' testbed.

The module-level results are computed once (loads are seconds each) and
shared across tests.
"""

import pytest

from repro.bench import BenchConfig, SYSTEMS, new_stack, open_engine
from repro.bench.harness import load_database
from repro.core import bolt_options
from repro.engines import leveldb_options

#: The default bench sizing: 20k records -> ~20+ MemTable flushes, data
#: reaching level 4, which is deep enough for steady-state compaction.
CONFIG = BenchConfig()


def load_one(system_key, options=None, config=CONFIG):
    stack = new_stack(config)
    db = open_engine(stack, SYSTEMS[system_key], config, options)
    proc = stack.env.process(load_database(stack, db, config))
    result, _counter = stack.env.run_until(proc)
    db.close_sync()
    return result, db, stack


@pytest.fixture(scope="module")
def loads():
    """Load-A results for every system, computed once."""
    results = {}
    for key in ("leveldb", "lvl64mb", "hyperleveldb", "pebblesdb",
                "rocksdb", "bolt", "hyperbolt"):
        results[key] = load_one(key)
    return results


class TestFig4Shapes:
    def test_bigger_sstables_fewer_fsyncs_and_faster(self):
        """Fig 4: fsync count drops ~linearly with SSTable size and the
        write path speeds up."""
        results = {}
        for size_mb in (2, 8, 32):
            options = leveldb_options(CONFIG.scale).copy(
                sstable_size=max(4096, size_mb * (1 << 20) // CONFIG.scale))
            results[size_mb], _db, _stack = load_one("leveldb", options)
        assert (results[2].fsync_calls > results[8].fsync_calls
                > results[32].fsync_calls)
        assert results[32].throughput > results[2].throughput


class TestFig11Shapes:
    def test_group_size_monotonically_cuts_fsyncs(self):
        counts = []
        for group_mb in (4, 16, 64):
            options = bolt_options(
                CONFIG.scale, settled=False, fd_cache=False,
                group_bytes=group_mb * (1 << 20))
            result, _db, _stack = load_one("bolt", options)
            counts.append(result.fsync_calls)
        assert counts[0] > counts[1] > counts[2]

    def test_bolt_full_beats_leveldb_on_fsyncs(self, loads):
        bolt, _d, _s = loads["bolt"]
        stock, _d, _s = loads["leveldb"]
        assert bolt.fsync_calls < stock.fsync_calls / 5


class TestHeadlineThroughput:
    """The paper's banner orderings on write-only Load A: BoLT 3.24x
    LevelDB, HyperBoLT 1.44x HyperLevelDB, Hyper ~4x Level, LVL64MB
    2.75x Level, PebblesDB best overall.  We assert direction and a
    generous lower band on the factors."""

    def test_bolt_much_faster_than_leveldb(self, loads):
        speedup = loads["bolt"][0].throughput / loads["leveldb"][0].throughput
        assert speedup > 1.4

    def test_hyperbolt_faster_than_hyperleveldb(self, loads):
        assert (loads["hyperbolt"][0].throughput
                > loads["hyperleveldb"][0].throughput)

    def test_hyperleveldb_faster_than_leveldb(self, loads):
        assert (loads["hyperleveldb"][0].throughput
                > 1.3 * loads["leveldb"][0].throughput)

    def test_lvl64mb_faster_than_stock(self, loads):
        assert (loads["lvl64mb"][0].throughput
                > 1.3 * loads["leveldb"][0].throughput)

    def test_bolt_beats_lvl64mb(self, loads):
        """§4.3.1: BoLT is ~17% over LVL64MB — small logical tables with
        one barrier beat big physical tables."""
        assert (loads["bolt"][0].throughput
                >= 0.95 * loads["lvl64mb"][0].throughput)

    def test_pebblesdb_wins_write_only(self, loads):
        """§4.3.1: PebblesDB's write-only throughput beats every
        LevelDB-derived system including BoLT (it skips merges)."""
        pebbles = loads["pebblesdb"][0].throughput
        assert pebbles > loads["leveldb"][0].throughput
        assert pebbles > loads["hyperleveldb"][0].throughput
        assert pebbles > loads["bolt"][0].throughput

    def test_barrier_time_is_the_mechanism(self, loads):
        """§6: BoLT's gain comes from eliminating barrier time — the
        device spends far less time in fsync-induced drains/flushes."""
        bolt_barrier = loads["bolt"][2].device.stats.barrier_time
        stock_barrier = loads["leveldb"][2].device.stats.barrier_time
        assert bolt_barrier < stock_barrier / 2


class TestWriteAmplification:
    def test_settled_compaction_reduces_bytes(self):
        """Fig 12 inset: +STL writes fewer total bytes (paper: -9.53%)."""
        with_stl, _d, _s = load_one("bolt", bolt_options(
            CONFIG.scale, settled=True, fd_cache=False))
        without, _d, _s = load_one("bolt", bolt_options(
            CONFIG.scale, settled=False, fd_cache=False))
        assert with_stl.bytes_written < without.bytes_written

    def test_bolt_writes_fewer_bytes_than_leveldb(self, loads):
        """§4.3.1: BoLT decreases total bytes written (paper: -16%)."""
        assert (loads["bolt"][0].bytes_written
                < loads["leveldb"][0].bytes_written)

    def test_write_amplification_sane(self, loads):
        for key, (result, _db, _stack) in loads.items():
            assert 1.0 < result.write_amplification < 40.0, key


class TestFormatEffect:
    def test_rocksdb_writes_fewer_bytes_for_small_records(self):
        """Fig 15(c): with 100-byte records RocksDB's compact record
        format writes fewer total bytes than BoLT."""
        small = CONFIG.copy(value_size=100, record_count=12_000)
        rocks, _d, _s = load_one("rocksdb", config=small)
        bolt, _d, _s = load_one("bolt", config=small)
        assert rocks.bytes_written < bolt.bytes_written

    def test_format_gap_narrows_for_large_records(self, fs, run):
        """§4.3.3: per-record on-disk size — 223 vs 141 bytes at 100 B
        values (58% apart) but only ~7% apart at 1 KB values."""
        from repro.lsm import LEVELDB_FORMAT, ROCKSDB_FORMAT
        from repro.lsm.codec import VALUE_TYPE_VALUE
        from repro.lsm.sstable import SSTableBuilder

        def per_record(fmt, value_size, name):
            def scenario():
                handle = yield from fs.create(name)
                builder = SSTableBuilder(handle, fmt)
                for i in range(400):
                    builder.add(b"%023d" % i, i + 1, VALUE_TYPE_VALUE,
                                b"v" * value_size)
                return builder.finish().length / 400

            return run(scenario())

        gap_small = (per_record(LEVELDB_FORMAT, 100, "a")
                     / per_record(ROCKSDB_FORMAT, 100, "b"))
        gap_large = (per_record(LEVELDB_FORMAT, 1024, "c")
                     / per_record(ROCKSDB_FORMAT, 1024, "d"))
        assert gap_small > 1.35
        assert gap_large < 1.15
