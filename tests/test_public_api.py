"""Tests for the top-level public API (`repro.open_database` et al.)."""

import pytest

import repro
from repro import open_database


class TestOpenDatabase:
    def test_default_opens_bolt(self):
        db, stack = open_database()
        assert db.name == "bolt"
        db.put_sync(b"k", b"v")
        assert db.get_sync(b"k") == b"v"
        assert stack.fs.exists("db/CURRENT")

    @pytest.mark.parametrize("system", ["leveldb", "lvl64mb", "hyperleveldb",
                                        "pebblesdb", "rocksdb", "bolt",
                                        "hyperbolt"])
    def test_every_registered_system_opens(self, system):
        db, _stack = open_database(system, scale=1024)
        db.put_sync(b"key", b"value")
        assert db.get_sync(b"key") == b"value"
        db.close_sync()

    def test_unknown_system_rejected(self):
        with pytest.raises(KeyError):
            open_database("berkeleydb")

    def test_scale_threads_through(self):
        db, _stack = open_database("leveldb", scale=64)
        assert db.options.sstable_size == (2 << 20) // 64

    def test_custom_options_override(self):
        from repro import leveldb_options
        options = leveldb_options(256).copy(bloom_bits_per_key=14)
        db, _stack = open_database("leveldb", options=options)
        assert db.options.bloom_bits_per_key == 14

    def test_version_exported(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name
