"""Crash-recovery integration tests.

These exercise the §2.4 failure-atomicity story end to end: the WAL and
MANIFEST act as commit marks, unsynced pages vanish per-page in any
order, and recovery must restore exactly the acknowledged-durable state
(plus, possibly, unsynced-but-lucky writes — never a corrupt mix).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import BoLTEngine, bolt_options
from repro.lsm import LSMEngine, Options
from repro.sim import Environment
from repro.storage import BlockDevice, PageCache, SimFS

KB = 1 << 10


def small_options(**overrides):
    base = dict(memtable_size=16 * KB, sstable_size=8 * KB,
                level1_max_bytes=32 * KB, block_cache_bytes=128 * KB)
    base.update(overrides)
    return Options(**base)


def fresh_stack():
    env = Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    return env, fs


class TestWalRecovery:
    def test_flushed_data_survives_total_crash(self):
        env, fs = fresh_stack()
        db = LSMEngine.open_sync(env, fs, small_options(), "db")
        for i in range(500):
            db.put_sync(b"key%05d" % i, b"value-%d" % i)
        env.run_until(env.process(db.flush_all()))
        fs.crash(survive_probability=0.0)

        db2 = LSMEngine.open_sync(env, fs, small_options(), "db")
        for i in range(500):
            assert db2.get_sync(b"key%05d" % i) == b"value-%d" % i

    def test_unflushed_unsynced_writes_lost(self):
        env, fs = fresh_stack()
        db = LSMEngine.open_sync(env, fs, small_options(), "db")
        db.put_sync(b"volatile", b"gone")
        fs.crash(survive_probability=0.0)
        db2 = LSMEngine.open_sync(env, fs, small_options(), "db")
        assert db2.get_sync(b"volatile") is None

    def test_wal_synced_writes_survive(self):
        env, fs = fresh_stack()
        db = LSMEngine.open_sync(env, fs, small_options(wal_sync=True), "db")
        db.put_sync(b"durable", b"kept")
        fs.crash(survive_probability=0.0)
        db2 = LSMEngine.open_sync(env, fs, small_options(), "db")
        assert db2.get_sync(b"durable") == b"kept"

    def test_torn_wal_tail_keeps_prefix(self):
        env, fs = fresh_stack()
        db = LSMEngine.open_sync(env, fs, small_options(wal_sync=True), "db")
        db.put_sync(b"a", b"1")
        db.put_sync(b"b", b"2")
        # Third write reaches the WAL page cache but is never synced.
        db.options.wal_sync = False
        db.put_sync(b"c", b"3")
        fs.crash(survive_probability=0.0)
        db2 = LSMEngine.open_sync(env, fs, small_options(), "db")
        assert db2.get_sync(b"a") == b"1"
        assert db2.get_sync(b"b") == b"2"
        assert db2.get_sync(b"c") is None

    def test_deletes_survive_recovery(self):
        env, fs = fresh_stack()
        db = LSMEngine.open_sync(env, fs, small_options(), "db")
        db.put_sync(b"k", b"v")
        env.run_until(env.process(db.flush_all()))
        db.delete_sync(b"k")
        env.run_until(env.process(db.flush_all()))
        fs.crash(survive_probability=0.0)
        db2 = LSMEngine.open_sync(env, fs, small_options(), "db")
        assert db2.get_sync(b"k") is None

    def test_sequence_numbers_continue_after_recovery(self):
        env, fs = fresh_stack()
        db = LSMEngine.open_sync(env, fs, small_options(), "db")
        for i in range(100):
            db.put_sync(b"k%d" % i, b"v")
        env.run_until(env.process(db.flush_all()))
        seq_before = db.versions.last_sequence
        fs.crash(survive_probability=0.0)
        db2 = LSMEngine.open_sync(env, fs, small_options(), "db")
        assert db2.versions.last_sequence >= seq_before
        db2.put_sync(b"new", b"v")
        assert db2.get_sync(b"new") == b"v"

    def test_recovery_is_idempotent(self):
        env, fs = fresh_stack()
        db = LSMEngine.open_sync(env, fs, small_options(), "db")
        for i in range(200):
            db.put_sync(b"key%05d" % i, b"v%d" % i)
        env.run_until(env.process(db.flush_all()))
        for _ in range(3):
            fs.crash(survive_probability=0.0)
            db = LSMEngine.open_sync(env, fs, small_options(), "db")
        for i in range(200):
            assert db.get_sync(b"key%05d" % i) == b"v%d" % i

    def test_obsolete_files_removed_on_recovery(self):
        env, fs = fresh_stack()
        db = LSMEngine.open_sync(env, fs, small_options(), "db")
        for i in range(400):
            db.put_sync(b"key%05d" % (i % 100), b"x" * 128)
        env.run_until(env.process(db.flush_all()))
        fs.crash(survive_probability=1.0)
        db2 = LSMEngine.open_sync(env, fs, small_options(), "db")
        live = {m.container for m in db2.versions.current.live_numbers().values()}
        tables_on_disk = {n for n in fs.listdir("db/") if n.endswith(".ldb")}
        assert tables_on_disk <= live | set()


class TestManifestCommitMark:
    def test_lucky_unsynced_pages_do_not_resurrect_uncommitted_tables(self):
        """Even if table pages survive, an uncommitted MANIFEST record
        decides: the compaction never happened."""
        env, fs = fresh_stack()
        db = LSMEngine.open_sync(env, fs, small_options(), "db")
        for i in range(300):
            db.put_sync(b"key%05d" % i, b"v" * 64)
        env.run_until(env.process(db.flush_all()))
        fs.crash(survive_probability=1.0)  # everything survives
        db2 = LSMEngine.open_sync(env, fs, small_options(), "db")
        db2.versions.current.check_invariants()
        for i in range(300):
            assert db2.get_sync(b"key%05d" % i) == b"v" * 64


class TestRandomizedCrashes:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1))
    def test_acknowledged_flushes_always_recover(self, seed):
        """Property: after a random-page crash, every key flushed before
        the last quiesce is intact — regardless of which unsynced pages
        survived."""
        rng = random.Random(seed)
        env, fs = fresh_stack()
        db = LSMEngine.open_sync(env, fs, small_options(), "db")
        model = {}
        for i in range(rng.randrange(100, 400)):
            key = b"user%06d" % rng.randrange(200)
            value = b"val-%d" % i
            model[key] = value
            db.put_sync(key, value)
        env.run_until(env.process(db.flush_all()))
        # Unsynced writes after the quiesce point may be lost.
        for i in range(rng.randrange(0, 50)):
            db.put_sync(b"late%04d" % i, b"x")
        fs.crash(rng=rng, survive_probability=rng.random())

        db2 = LSMEngine.open_sync(env, fs, small_options(), "db")
        for key, value in model.items():
            assert db2.get_sync(key) == value, key

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 2 ** 31 - 1))
    def test_bolt_recovers_like_leveldb(self, seed):
        """BoLT's logical SSTables and hole punching must not weaken the
        recovery contract."""
        rng = random.Random(seed)
        env, fs = fresh_stack()
        options = bolt_options(1024)
        db = BoLTEngine.open_sync(env, fs, options, "db")
        model = {}
        for i in range(rng.randrange(100, 400)):
            key = b"user%06d" % rng.randrange(150)
            value = b"val-%d" % i
            model[key] = value
            db.put_sync(key, value)
        env.run_until(env.process(db.flush_all()))
        fs.crash(rng=rng, survive_probability=rng.random())

        db2 = BoLTEngine.open_sync(env, fs, options, "db")
        for key, value in model.items():
            assert db2.get_sync(key) == value, key
