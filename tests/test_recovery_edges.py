"""Recovery edge cases driven through the repro.faults harness.

Four corners the plain recovery tests don't reach: power loss in the
middle of the recovery-time MANIFEST rewrite itself, power loss right
after a BoLT hole punch (which deliberately issues no barrier, §3.2),
reopening a database whose WAL never received a durable byte, and the
fixed-point property of recovery (reopen-after-reopen changes nothing).
"""

import random

from repro.core import BoLTEngine, bolt_options
from repro.faults import (
    SITE_CURRENT_RENAME,
    SITE_HOLE_PUNCH,
    SITE_MANIFEST_APPEND,
    SITE_MANIFEST_COMMIT,
    CrashChecker,
    CrashInjector,
    DurabilityOracle,
    FaultModel,
    FaultPlan,
)
from repro.lsm import LSMEngine, Options
from repro.sim import Environment
from repro.storage import BlockDevice, PageCache, SimFS

KB = 1 << 10

ALL_LOST = FaultModel("all-lost", 0.0)
SUBSET = FaultModel("subset", 0.5)


def small_options(**overrides):
    base = dict(memtable_size=16 * KB, sstable_size=8 * KB,
                level1_max_bytes=32 * KB, block_cache_bytes=128 * KB,
                wal_sync=True)
    base.update(overrides)
    return Options(**base)


def fresh_stack():
    env = Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    return env, fs


def run_workload(env, fs, db, oracle, num_ops=120, keyspace=40, seed=2,
                 value_pad=0):
    rng = random.Random(seed)
    for i in range(num_ops):
        key = b"key%05d" % rng.randrange(keyspace)
        if i % 9 == 8:
            oracle.begin(key, None)
            db.delete_sync(key)
            oracle.acked(key, None)
        else:
            value = b"value-%04d" % i + b"x" * value_pad
            oracle.begin(key, value)
            db.put_sync(key, value)
            oracle.acked(key, value)
    env.run_until(env.process(db.flush_all()))


class TestManifestRewriteCrash:
    def test_crash_mid_manifest_rewrite_is_recoverable(self):
        # Build a database, then arm the injector only on the MANIFEST
        # sites and reopen: recovery rewrites the MANIFEST and renames
        # CURRENT, and a crash at any instant of that dance must leave a
        # recoverable image.
        env, fs = fresh_stack()
        oracle = DurabilityOracle()
        db = LSMEngine.open_sync(env, fs, small_options(), "db")
        run_workload(env, fs, db, oracle)
        db.close_sync()

        plan = FaultPlan(sites=(SITE_MANIFEST_APPEND, SITE_MANIFEST_COMMIT,
                                SITE_CURRENT_RENAME), max_per_site=None)
        injector = CrashInjector(fs, plan, oracle)
        db2 = LSMEngine.open_sync(env, fs, small_options(), "db")
        db2.close_sync()
        injector.disarm()

        assert injector.images, "reopen never hit a MANIFEST crash site"
        sites = {image.site for image in injector.images}
        assert SITE_CURRENT_RENAME in sites
        checker = CrashChecker(LSMEngine, small_options(), "db")
        for image in injector.images:
            for model in (ALL_LOST, SUBSET):
                violations = checker.check_image(image, model, seed=3)
                assert violations == [], "\n".join(str(v) for v in violations)


class TestHolePunchCrash:
    def test_crash_after_hole_punch_before_next_barrier(self):
        # §3.2: BoLT punches dead logical SSTables without a barrier.
        # A crash in that window must never surface punched data — the
        # MANIFEST committed first, so no live table points there.
        env, fs = fresh_stack()
        oracle = DurabilityOracle()
        plan = FaultPlan(sites=(SITE_HOLE_PUNCH,), max_images=6,
                         max_per_site=6)
        injector = CrashInjector(fs, plan, oracle)
        options = bolt_options(4096).copy(wal_sync=True)
        db = BoLTEngine.open_sync(env, fs, options, "db")
        run_workload(env, fs, db, oracle, num_ops=800, keyspace=300,
                     value_pad=90)
        db.close_sync()
        injector.disarm()

        assert injector.images, "workload never punched a hole"
        assert fs.stats.num_hole_punches > 0
        checker = CrashChecker(BoLTEngine, options, "db")
        for image in injector.images:
            for model in (ALL_LOST, SUBSET):
                violations = checker.check_image(image, model, seed=5)
                assert violations == [], "\n".join(str(v) for v in violations)


class TestEmptyWalReopen:
    def test_reopen_with_no_durable_wal_bytes(self):
        # The WAL file exists (its create is journalled) but power is
        # lost before any record reaches the platter.
        env, fs = fresh_stack()
        db = LSMEngine.open_sync(env, fs, small_options(wal_sync=False), "db")
        db.put_sync(b"ghost", b"never-synced")
        fs.crash(survive_probability=0.0)
        db2 = LSMEngine.open_sync(env, fs, small_options(), "db")
        assert db2.get_sync(b"ghost") is None
        db2.put_sync(b"alive", b"yes")
        assert db2.get_sync(b"alive") == b"yes"
        db2.close_sync()

    def test_reopen_freshly_created_database(self):
        env, fs = fresh_stack()
        db = LSMEngine.open_sync(env, fs, small_options(), "db")
        db.close_sync()
        fs.crash(survive_probability=0.0)
        db2 = LSMEngine.open_sync(env, fs, small_options(), "db")
        assert db2.scan_sync(b"", 16) == []
        db2.close_sync()


class TestDoubleReopenIdempotence:
    def _surviving_state(self, seed):
        env, fs = fresh_stack()
        oracle = DurabilityOracle()
        db = LSMEngine.open_sync(env, fs, small_options(), "db")
        run_workload(env, fs, db, oracle, seed=seed)
        # Crash without closing: recovery starts from a torn runtime
        # state, with a random subset of unsynced pages surviving.
        fs.crash(rng=random.Random(seed), survive_probability=0.5)
        return env, fs

    def test_second_recovery_is_a_fixed_point(self):
        for seed in (1, 2, 3):
            env, fs = self._surviving_state(seed)
            db = LSMEngine.open_sync(env, fs, small_options(), "db")
            env.run_until(env.process(db.wait_idle()))
            first = db.scan_sync(b"", 256)
            db.close_sync()
            fs.crash(survive_probability=0.0)
            db2 = LSMEngine.open_sync(env, fs, small_options(), "db")
            second = db2.scan_sync(b"", 256)
            db2.close_sync()
            assert first == second

    def test_repeated_recovery_without_quiesce(self):
        # Even without waiting for background work, closing and
        # re-recovering repeatedly must converge on one state.
        env, fs = self._surviving_state(seed=9)
        states = []
        for _ in range(3):
            db = LSMEngine.open_sync(env, fs, small_options(), "db")
            env.run_until(env.process(db.wait_idle()))
            states.append(db.scan_sync(b"", 256))
            db.close_sync()
            fs.crash(survive_probability=0.0)
        assert states[0] == states[1] == states[2]
