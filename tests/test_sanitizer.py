"""Runtime sanitizer tests: lockdep cycles, planted races, zero overhead.

Covers the issue's acceptance criteria: ``Kernel(sanitize=True)``
detects a planted lock-order cycle and a torn version update, real
engine runs are sanitizer-clean, and sanitize mode changes nothing about
the simulation's results.
"""

import pytest

from repro.analysis.sanitizer import NULL_SANITIZER, SanitizerError
from repro.lsm import LSMEngine
from repro.lsm.manifest import VersionEdit
from repro.obs import Tracer
from repro.sim import Environment, Kernel, Resource
from repro.storage import BlockDevice, PageCache, SATA_SSD, SimFS
from repro.tools.dbbench import _parser, run_benchmarks

KB = 1 << 10
MB = 1 << 20


def _silent(*_args, **_kwargs):
    pass


def sanitized_stack(small_options):
    env = Kernel(sanitize=True)
    device = BlockDevice(env, SATA_SSD)
    fs = SimFS(env, device, PageCache(32 * MB))
    db = LSMEngine.open_sync(env, fs, small_options, "db")
    return env, fs, db


class TestKernelWiring:
    def test_default_environment_has_shared_null_sanitizer(self):
        env = Environment()
        assert env.sanitizer is NULL_SANITIZER
        assert not env.sanitizer.enabled

    def test_kernel_alias_and_sanitize_flag(self):
        env = Kernel(sanitize=True)
        assert type(env) is Environment
        assert env.sanitizer.enabled
        assert env.sanitizer.reports == []

    def test_check_is_a_noop_when_clean(self):
        Kernel(sanitize=True).sanitizer.check()


class TestLockdep:
    def _ordered_acquire(self, env, first, second):
        def proc():
            yield first.acquire()
            yield second.acquire()
            second.release()
            first.release()
        env.process(proc())
        env.run()

    def test_three_mutex_cycle_is_reported(self):
        env = Kernel(sanitize=True)
        a = Resource(env, 1, name="A")
        b = Resource(env, 1, name="B")
        c = Resource(env, 1, name="C")
        self._ordered_acquire(env, a, b)
        self._ordered_acquire(env, b, c)
        assert env.sanitizer.reports == []  # A->B->C alone is acyclic
        self._ordered_acquire(env, c, a)
        kinds = [r.kind for r in env.sanitizer.reports]
        assert kinds == ["lock-cycle"]
        message = env.sanitizer.reports[0].message
        for name in ("A", "B", "C"):
            assert name in message
        with pytest.raises(SanitizerError):
            env.sanitizer.check()

    def test_consistent_order_is_clean(self):
        env = Kernel(sanitize=True)
        a = Resource(env, 1, name="A")
        b = Resource(env, 1, name="B")
        for _ in range(3):
            self._ordered_acquire(env, a, b)
        assert env.sanitizer.reports == []

    def test_two_lock_inversion_is_reported(self):
        env = Kernel(sanitize=True)
        a = Resource(env, 1, name="A")
        b = Resource(env, 1, name="B")
        self._ordered_acquire(env, a, b)
        self._ordered_acquire(env, b, a)
        assert [r.kind for r in env.sanitizer.reports] == ["lock-cycle"]

    def test_semaphore_slots_are_not_lock_edges(self):
        # The device channel acquires several slots of ONE capacity>1
        # resource (_acquire_all); that must not look like lock nesting.
        env = Kernel(sanitize=True)
        channel = Resource(env, 4, name="channel")

        def drain():
            for _ in range(4):
                yield channel.acquire()
            for _ in range(4):
                channel.release()

        env.process(drain())
        env.run()
        assert env.sanitizer.reports == []

    def test_contended_handoff_tracks_the_new_owner(self):
        env = Kernel(sanitize=True)
        lock = Resource(env, 1, name="L")
        order = []

        def holder():
            yield lock.acquire()
            order.append("holder")
            yield env.timeout(1.0)
            lock.release()

        def waiter():
            yield lock.acquire()
            order.append("waiter")
            held = env.sanitizer.held_by(env.active_process)
            assert held == [lock]
            lock.release()

        env.process(holder(), name="holder")
        proc = env.process(waiter(), name="waiter")
        env.run_until(proc)
        assert order == ["holder", "waiter"]
        assert env.sanitizer.reports == []


class TestRaceDetector:
    def _race_env(self):
        env = Kernel(sanitize=True)

        class Shared:
            pass

        shared = Shared()
        env.sanitizer.register(shared, "shared")
        return env, shared

    def test_two_unlocked_writers_race(self):
        env, shared = self._race_env()

        def writer():
            env.sanitizer.note_write(shared, "field")
            yield env.timeout(0.01)

        env.process(writer(), name="w1")
        env.process(writer(), name="w2")
        env.run()
        reports = env.sanitizer.reports
        assert [r.kind for r in reports] == ["data-race"]
        assert reports[0].details["object"] == "shared"
        assert sorted(reports[0].details["writers"]) == ["w1", "w2"]

    def test_common_lock_suppresses_the_race(self):
        env, shared = self._race_env()
        lock = Resource(env, 1, name="guard")

        def writer():
            yield lock.acquire()
            env.sanitizer.note_write(shared, "field")
            lock.release()

        env.process(writer(), name="w1")
        env.process(writer(), name="w2")
        env.run()
        assert env.sanitizer.reports == []

    def test_barrier_separates_epochs(self):
        env, shared = self._race_env()

        def writer(delay):
            yield env.timeout(delay)
            env.sanitizer.note_write(shared, "field")

        def barrier_between():
            yield env.timeout(0.5)
            env.sanitizer.barrier("test")

        env.process(writer(0.0), name="w1")
        env.process(barrier_between())
        env.process(writer(1.0), name="w2")
        env.run()
        assert env.sanitizer.reports == []

    def test_unregistered_objects_are_ignored(self):
        env = Kernel(sanitize=True)
        env.sanitizer.note_write(object(), "field")
        assert env.sanitizer.reports == []

    def test_reports_mirrored_as_trace_instants(self):
        tracer = Tracer()
        env = Kernel(sanitize=True, tracer=tracer)

        class Shared:
            pass

        shared = Shared()
        env.sanitizer.register(shared, "versions")

        def writer():
            env.sanitizer.note_write(shared, "current")
            yield env.timeout(0.01)

        env.process(writer(), name="w1")
        env.process(writer(), name="w2")
        env.run()
        instants = [i for i in tracer.instants if i.cat == "sanitizer"]
        assert [i.name for i in instants] == ["sanitizer.data-race"]


class TestPlantedTornVersionUpdate:
    def test_concurrent_unlocked_applies_are_reported(self, small_options):
        # Two sim-threads installing versions directly — bypassing
        # log_and_apply's commit lock — is exactly the torn update the
        # write-set tracker exists to catch.
        env, _fs, db = sanitized_stack(small_options)
        assert env.sanitizer.reports == []

        def rogue_apply():
            db.versions._apply(VersionEdit())
            yield env.timeout(0.001)

        env.process(rogue_apply(), name="rogue1")
        env.process(rogue_apply(), name="rogue2")
        env.run()
        db.close_sync()
        kinds = {r.kind for r in env.sanitizer.reports}
        assert kinds == {"data-race"}
        assert env.sanitizer.reports[0].details["field"] == "current"


class TestEngineIsSanitizerClean:
    def test_write_flush_compact_read_cycle(self, small_options):
        env, _fs, db = sanitized_stack(small_options)

        def workload():
            value = b"v" * 512
            for i in range(400):
                yield from db.put(b"k%06d" % (i * 37 % 400), value)
            yield from db.flush_all()
            for i in range(0, 400, 7):
                yield from db.get(b"k%06d" % i)

        env.run_until(env.process(workload()))
        db.close_sync()
        assert env.sanitizer.reports == [], [
            r.render() for r in env.sanitizer.reports]


class TestSanitizeChangesNothing:
    def test_dbbench_rows_identical_with_and_without_sanitizer(self):
        argv = ["--engine", "bolt", "--num", "600",
                "--benchmarks", "fillrandom,readrandom,stats"]
        plain = run_benchmarks(_parser().parse_args(argv), out=_silent)
        sanitized = run_benchmarks(
            _parser().parse_args(argv + ["--sanitize"]), out=_silent)
        assert plain == sanitized
