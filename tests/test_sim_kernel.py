"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    Condition,
    CostModel,
    CpuMeter,
    Environment,
    Gate,
    Interrupt,
    Resource,
    SimulationError,
)


class TestEnvironment:
    def test_clock_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_timeout_advances_clock(self):
        env = Environment()

        def worker():
            yield env.timeout(2.5)

        env.process(worker())
        env.run()
        assert env.now == 2.5

    def test_run_until_limit_without_events(self):
        env = Environment()
        env.run(until=10.0)
        assert env.now == 10.0

    def test_events_fire_in_time_order(self):
        env = Environment()
        log = []

        def waiter(delay, tag):
            yield env.timeout(delay)
            log.append(tag)

        env.process(waiter(3.0, "late"))
        env.process(waiter(1.0, "early"))
        env.process(waiter(2.0, "middle"))
        env.run()
        assert log == ["early", "middle", "late"]

    def test_same_time_events_fire_fifo(self):
        env = Environment()
        log = []

        def waiter(tag):
            yield env.timeout(1.0)
            log.append(tag)

        for tag in ("a", "b", "c"):
            env.process(waiter(tag))
        env.run()
        assert log == ["a", "b", "c"]


class TestProcess:
    def test_return_value(self):
        env = Environment()

        def worker():
            yield env.timeout(1.0)
            return 41 + 1

        proc = env.process(worker())
        assert env.run_until(proc) == 42

    def test_yield_from_composition(self):
        env = Environment()

        def inner():
            yield env.timeout(1.0)
            return "inner-value"

        def outer():
            value = yield from inner()
            yield env.timeout(1.0)
            return value + "!"

        proc = env.process(outer())
        assert env.run_until(proc) == "inner-value!"
        assert env.now == 2.0

    def test_exception_propagates_to_run_until(self):
        env = Environment()

        def worker():
            yield env.timeout(1.0)
            raise ValueError("boom")

        proc = env.process(worker())
        with pytest.raises(ValueError, match="boom"):
            env.run_until(proc)

    def test_waiting_on_failed_event_raises_inside_process(self):
        env = Environment()
        bad = env.event()

        def worker():
            with pytest.raises(RuntimeError, match="bad news"):
                yield bad
            return "survived"

        proc = env.process(worker())
        bad.fail(RuntimeError("bad news"))
        assert env.run_until(proc) == "survived"

    def test_interrupt(self):
        env = Environment()

        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                return f"interrupted: {interrupt.cause}"
            return "slept"

        proc = env.process(sleeper())

        def interrupter():
            yield env.timeout(1.0)
            proc.interrupt("wake up")

        env.process(interrupter())
        assert env.run_until(proc) == "interrupted: wake up"
        assert env.now == pytest.approx(1.0)

    def test_yielding_non_event_fails_process(self):
        env = Environment()

        def worker():
            yield 42  # not an Event

        proc = env.process(worker())
        with pytest.raises(SimulationError):
            env.run_until(proc)

    def test_deadlock_detection(self):
        env = Environment()
        never = env.event()

        def worker():
            yield never

        proc = env.process(worker())
        with pytest.raises(SimulationError, match="deadlock"):
            env.run_until(proc)


class TestEvent:
    def test_double_trigger_rejected(self):
        env = Environment()
        event = env.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_late_callback_still_runs(self):
        env = Environment()
        event = env.event()
        event.succeed("v")
        env.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        env.run()
        assert seen == ["v"]

    def test_all_of_collects_values_in_order(self):
        env = Environment()
        events = [env.timeout(3.0, "c"), env.timeout(1.0, "a"),
                  env.timeout(2.0, "b")]

        def waiter():
            values = yield env.all_of(events)
            return values

        proc = env.process(waiter())
        assert env.run_until(proc) == ["c", "a", "b"]
        assert env.now == 3.0

    def test_all_of_empty(self):
        env = Environment()

        def waiter():
            values = yield env.all_of([])
            return values

        assert env.run_until(env.process(waiter())) == []

    def test_any_of_returns_first(self):
        env = Environment()

        def waiter():
            value = yield env.any_of([env.timeout(5.0, "slow"),
                                      env.timeout(1.0, "fast")])
            return value

        proc = env.process(waiter())
        assert env.run_until(proc) == "fast"
        assert env.now == 1.0


class TestResource:
    def test_mutex_serializes(self):
        env = Environment()
        lock = Resource(env, 1)
        log = []

        def worker(tag):
            yield lock.acquire()
            log.append(f"{tag}-in@{env.now}")
            yield env.timeout(1.0)
            log.append(f"{tag}-out@{env.now}")
            lock.release()

        env.process(worker("a"))
        env.process(worker("b"))
        env.run()
        assert log == ["a-in@0.0", "a-out@1.0", "b-in@1.0", "b-out@2.0"]

    def test_fifo_ordering(self):
        env = Environment()
        lock = Resource(env, 1)
        order = []

        def worker(tag):
            yield lock.acquire()
            order.append(tag)
            yield env.timeout(0.1)
            lock.release()

        for tag in range(5):
            env.process(worker(tag))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_capacity_allows_parallelism(self):
        env = Environment()
        pool = Resource(env, 2)
        done_times = []

        def worker():
            yield pool.acquire()
            yield env.timeout(1.0)
            done_times.append(env.now)
            pool.release()

        for _ in range(4):
            env.process(worker())
        env.run()
        assert done_times == [1.0, 1.0, 2.0, 2.0]

    def test_release_idle_raises(self):
        env = Environment()
        lock = Resource(env, 1)
        with pytest.raises(SimulationError):
            lock.release()

    def test_try_acquire(self):
        env = Environment()
        lock = Resource(env, 1)
        assert lock.try_acquire()
        assert not lock.try_acquire()
        lock.release()
        assert lock.try_acquire()

    def test_contention_stats(self):
        env = Environment()
        lock = Resource(env, 1)

        def worker():
            yield lock.acquire()
            yield env.timeout(1.0)
            lock.release()

        env.process(worker())
        env.process(worker())
        env.run()
        assert lock.total_acquisitions == 2
        assert lock.total_contended == 1


class TestCondition:
    def test_notify_all_wakes_everyone(self):
        env = Environment()
        cond = Condition(env)
        woken = []

        def waiter(tag):
            yield cond.wait()
            woken.append(tag)

        for tag in range(3):
            env.process(waiter(tag))

        def notifier():
            yield env.timeout(1.0)
            cond.notify_all()

        env.process(notifier())
        env.run()
        assert sorted(woken) == [0, 1, 2]

    def test_notify_one(self):
        env = Environment()
        cond = Condition(env)
        woken = []

        def waiter(tag):
            yield cond.wait()
            woken.append(tag)

        env.process(waiter("first"))
        env.process(waiter("second"))

        def notifier():
            yield env.timeout(1.0)
            cond.notify_one()

        env.process(notifier())
        env.run(until=10.0)
        assert woken == ["first"]
        assert cond.waiting == 1


class TestGate:
    def test_open_gate_passes_immediately(self):
        env = Environment()
        gate = Gate(env, open_=True)

        def worker():
            yield gate.wait()
            return env.now

        assert env.run_until(env.process(worker())) == 0.0

    def test_closed_gate_blocks_until_open(self):
        env = Environment()
        gate = Gate(env, open_=False)

        def worker():
            yield gate.wait()
            return env.now

        proc = env.process(worker())

        def opener():
            yield env.timeout(3.0)
            gate.open()

        env.process(opener())
        assert env.run_until(proc) == 3.0


class TestCpuMeter:
    def test_charges_accumulate_and_drain_once(self):
        env = Environment()
        meter = CpuMeter(env, CostModel())
        meter.charge(1.0)
        meter.charge(0.5)
        assert meter.pending == 1.5

        def worker():
            yield from meter.drain()
            return env.now

        assert env.run_until(env.process(worker())) == 1.5
        assert meter.pending == 0.0
        assert meter.total_charged == 1.5

    def test_charge_bytes_uses_model(self):
        env = Environment()
        model = CostModel(memcpy_per_byte=2.0)
        meter = CpuMeter(env, model)
        meter.charge_bytes(3)
        assert meter.pending == 6.0

    def test_empty_drain_takes_no_time(self):
        env = Environment()
        meter = CpuMeter(env, CostModel())

        def worker():
            yield from meter.drain()
            return env.now

        assert env.run_until(env.process(worker())) == 0.0


class TestSameTickFifoOrdering:
    """Pin the event queue's same-timestamp FIFO contract (seq order).

    The array-backed queue rewrite must preserve the exact global
    processing order: entries scheduled at the same virtual timestamp
    run in scheduling (seq) order, interleaved correctly with entries
    already sitting in the heap for that timestamp.  A silent reorder
    here would change every downstream simulation byte-for-byte.
    """

    @staticmethod
    def _dense_same_tick_run():
        env = Environment()
        log = []

        def chain(tag, fanout):
            # Spawns same-time children from inside a step: exercises
            # scheduling at the *current* tick while the tick is being
            # drained (the fast-path case).
            log.append(("start", tag, env.now))
            for i in range(fanout):
                env.call_later(0.0, lambda t=(tag, i): log.append(
                    ("call", t, env.now)))
            yield env.timeout(0.0)
            log.append(("resumed", tag, env.now))
            event = env.event()
            event.succeed(tag)
            got = yield event
            log.append(("event", got, env.now))

        # Seed a mix of future and same-time work: three ticks, each
        # densely populated, plus processes that keep adding work at the
        # tick being processed.
        for tick in (0.0, 1.0, 1.0, 2.0):
            env.process(_delayed_spawn(env, tick, chain, log))
        for tag in ("x", "y", "z"):
            env.process(chain(tag, 3))
        env.run()
        return log

    def test_same_tick_entries_fifo_by_seq(self):
        env = Environment()
        order = []
        # Schedule 50 zero-delay callbacks from outside any step: they
        # must run in exactly the order scheduled.
        for i in range(50):
            env.call_later(0.0, lambda i=i: order.append(i))
        env.run()
        assert order == list(range(50))

    def test_same_tick_mixed_heap_and_fastpath_fifo(self):
        env = Environment()
        order = []
        # Future-time entries land in the heap; once time advances to
        # 1.0, newly scheduled zero-delay entries (seq higher) must run
        # *after* the heap entries already queued for 1.0 with lower seq:
        # b's timeout (scheduled at time 0) beats a's late callback
        # (scheduled while draining tick 1.0).
        def at_one(tag):
            yield env.timeout(1.0)
            order.append(("proc", tag))
            env.call_later(0.0, lambda: order.append(("late", tag)))

        for tag in ("a", "b"):
            env.process(at_one(tag))
        env.run()
        assert order == [("proc", "a"), ("proc", "b"),
                         ("late", "a"), ("late", "b")]

    def test_dense_same_tick_schedule_is_twice_run_identical(self):
        assert self._dense_same_tick_run() == self._dense_same_tick_run()

    def test_timeout_events_keep_scheduling_order_within_tick(self):
        env = Environment()
        order = []

        def sleeper(tag, delay):
            yield env.timeout(delay)
            order.append(tag)

        # Same deadline reached via different mixes of (schedule time,
        # delay); ties must break by scheduling order, never by delay.
        env.process(sleeper("first", 2.0))
        env.process(sleeper("second", 2.0))
        env.process(sleeper("third", 2.0))
        env.run()
        assert order == ["first", "second", "third"]


def _delayed_spawn(env, delay, chain, log):
    yield env.timeout(delay)
    yield from chain(f"t{delay}", 2)
