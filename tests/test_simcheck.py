"""Fixture-snippet tests for every simcheck rule, plus the self-check.

Each rule gets at least one deliberately broken snippet (must be
flagged) and one clean snippet (must not be).  The final test asserts
the library itself is simcheck-clean, which is what the CI job enforces.
"""

import subprocess
import sys
from pathlib import Path

from repro.analysis.simcheck import RULES, check_paths, check_source, main

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"


def rules_hit(source):
    return {f.rule for f in check_source(source)}


class TestSIM001WallClock:
    def test_flags_time_time(self):
        assert "SIM001" in rules_hit(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n")

    def test_flags_datetime_now_and_aliased_import(self):
        assert "SIM001" in rules_hit(
            "import datetime\n"
            "t = datetime.datetime.now()\n")
        assert "SIM001" in rules_hit(
            "from time import perf_counter as pc\n"
            "t = pc()\n")

    def test_clean_virtual_clock(self):
        assert "SIM001" not in rules_hit(
            "def stamp(env):\n"
            "    return env.now\n")

    def test_clean_unrelated_attribute_named_time(self):
        # foo.time() is not the time module unless `foo` imports it.
        assert "SIM001" not in rules_hit(
            "def stamp(recorder):\n"
            "    return recorder.time()\n")


class TestSIM002UnseededRandom:
    def test_flags_bare_random_constructor(self):
        assert "SIM002" in rules_hit(
            "import random\n"
            "rng = random.Random()\n")

    def test_flags_module_level_functions_and_urandom(self):
        assert "SIM002" in rules_hit(
            "import random\n"
            "x = random.randrange(10)\n")
        assert "SIM002" in rules_hit(
            "import os\n"
            "salt = os.urandom(8)\n")

    def test_clean_seeded_constructor_and_instance_calls(self):
        assert "SIM002" not in rules_hit(
            "import random\n"
            "rng = random.Random(42)\n"
            "x = rng.randrange(10)\n")

    def test_clean_aliased_instance(self):
        assert "SIM002" not in rules_hit(
            "def draw(self):\n"
            "    return self.rng.random()\n")


class TestSIM003SetIteration:
    def test_flags_for_loop_over_set_literal(self):
        assert "SIM003" in rules_hit(
            "for table in {3, 1, 2}:\n"
            "    print(table)\n")

    def test_flags_iteration_over_set_typed_name(self):
        assert "SIM003" in rules_hit(
            "live = set()\n"
            "live.add(1)\n"
            "names = [n for n in live]\n")

    def test_flags_list_materialization_and_set_methods(self):
        assert "SIM003" in rules_hit(
            "a = {1, 2}\n"
            "b = {2, 3}\n"
            "order = list(a.union(b))\n")

    def test_clean_sorted_iteration(self):
        assert "SIM003" not in rules_hit(
            "live = {3, 1, 2}\n"
            "for table in sorted(live):\n"
            "    print(table)\n")

    def test_clean_order_insensitive_consumers(self):
        assert "SIM003" not in rules_hit(
            "live = {3, 1, 2}\n"
            "total = sum(x for x in live)\n"
            "count = len(live)\n"
            "biggest = max(live)\n")

    def test_clean_dict_iteration(self):
        # Python dicts are insertion-ordered; values() is deterministic.
        assert "SIM003" not in rules_hit(
            "d = {'a': 1}\n"
            "for v in d.values():\n"
            "    print(v)\n")


class TestSIM004ClockEquality:
    def test_flags_equality_against_now(self):
        assert "SIM004" in rules_hit(
            "def check(env, deadline):\n"
            "    return env.now == deadline\n")
        assert "SIM004" in rules_hit(
            "def check(env, t0):\n"
            "    assert env.now != t0\n")

    def test_clean_inequalities_and_arithmetic(self):
        assert "SIM004" not in rules_hit(
            "def check(env, deadline):\n"
            "    return env.now >= deadline\n")
        assert "SIM004" not in rules_hit(
            "def elapsed(env, t0):\n"
            "    return env.now - t0\n")


class TestSIM005BarrierDominance:
    BROKEN = (
        "def compact(self, entries, sink, edit, meter):\n"
        "    for entry in entries:\n"
        "        handle, name = yield from sink.next_handle(1)\n"
        "        handle.append(entry)\n"
        "    yield from self.versions.log_and_apply(edit, meter)\n")

    FIXED = (
        "def compact(self, entries, sink, edit, meter):\n"
        "    for entry in entries:\n"
        "        handle, name = yield from sink.next_handle(1)\n"
        "        handle.append(entry)\n"
        "    yield from sink.seal()\n"
        "    yield from self.versions.log_and_apply(edit, meter)\n")

    def test_flags_commit_without_barrier(self):
        assert "SIM005" in rules_hit(self.BROKEN)

    def test_clean_sealed_commit(self):
        assert "SIM005" not in rules_hit(self.FIXED)

    def test_helper_that_seals_internally_dominates(self):
        # _build_tables writes AND seals; callers need no extra barrier.
        assert "SIM005" not in rules_hit(
            "def _build_tables(self, entries, sink):\n"
            "    for entry in entries:\n"
            "        handle, _ = yield from sink.next_handle(1)\n"
            "    yield from sink.seal()\n"
            "\n"
            "def flush(self, edit, meter):\n"
            "    yield from self._build_tables([], None)\n"
            "    yield from self.versions.log_and_apply(edit, meter)\n")

    def test_helper_that_only_writes_taints_the_caller(self):
        assert "SIM005" in rules_hit(
            "def _build_tables(self, entries, sink):\n"
            "    for entry in entries:\n"
            "        handle, _ = yield from sink.next_handle(1)\n"
            "\n"
            "def flush(self, edit, meter):\n"
            "    yield from self._build_tables([], None)\n"
            "    yield from self.versions.log_and_apply(edit, meter)\n")

    def test_clean_commit_with_no_write(self):
        # Quarantine persistence commits an edit without table writes.
        assert "SIM005" not in rules_hit(
            "def persist(self, edit, meter):\n"
            "    yield from self.versions.log_and_apply(edit, meter)\n")


class TestWaivers:
    def test_waiver_suppresses_named_rule(self):
        assert rules_hit(
            "import random\n"
            "rng = random.Random()  # simcheck: waive[SIM002]\n") == set()

    def test_waiver_star_suppresses_all(self):
        assert rules_hit(
            "import time\n"
            "t = time.time()  # simcheck: waive[*]\n") == set()

    def test_waiver_for_other_rule_does_not_suppress(self):
        assert "SIM002" in rules_hit(
            "import random\n"
            "rng = random.Random()  # simcheck: waive[SIM001]\n")


class TestDriver:
    def test_findings_carry_location_and_rule(self):
        findings = check_source("import time\nt = time.time()\n", path="x.py")
        assert len(findings) == 1
        f = findings[0]
        assert (f.path, f.line, f.rule) == ("x.py", 2, "SIM001")
        assert f.render().startswith("x.py:2:")

    def test_every_rule_id_is_exercised_by_fixtures(self):
        broken = {
            "SIM001": "import time\nt = time.time()\n",
            "SIM002": "import random\nr = random.Random()\n",
            "SIM003": "for x in {1, 2}:\n    print(x)\n",
            "SIM004": "def f(env):\n    return env.now == 0.0\n",
            "SIM005": TestSIM005BarrierDominance.BROKEN,
        }
        assert set(broken) == set(RULES)
        for rule, source in broken.items():
            assert rule in rules_hit(source), rule

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n")
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out

    def test_syntax_error_is_reported_not_raised(self):
        findings = check_source("def broken(:\n", path="bad.py")
        assert findings and findings[0].rule == "SIM000"


class TestSelfCheck:
    def test_src_repro_is_simcheck_clean(self):
        findings = check_paths([str(SRC_REPRO)])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_cli_module_runs_clean_on_the_tree(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.tools.simcheck", str(SRC_REPRO)],
            capture_output=True, text=True,
            cwd=str(SRC_REPRO.parent.parent),
            env={"PYTHONPATH": str(SRC_REPRO.parent), "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stdout + proc.stderr
