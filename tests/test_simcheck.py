"""Fixture-snippet tests for every simcheck rule, plus the self-check.

Each rule gets at least one deliberately broken snippet (must be
flagged) and one clean snippet (must not be).  The final test asserts
the library itself is simcheck-clean modulo the committed baseline,
which is what the CI job enforces.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.simcheck import (
    BaselineError,
    RULES,
    _parse_waivers,
    apply_baseline,
    check_paths,
    check_source,
    check_sources,
    load_baseline,
    main,
)

SRC_REPRO = Path(__file__).resolve().parent.parent / "src" / "repro"
REPO_ROOT = SRC_REPRO.parent.parent
BASELINE = REPO_ROOT / "simcheck_baseline.json"


def rules_hit(source):
    return {f.rule for f in check_source(source)}


def rules_hit_multi(sources):
    return {f.rule for f in check_sources(sources)}


class TestSIM001WallClock:
    def test_flags_time_time(self):
        assert "SIM001" in rules_hit(
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n")

    def test_flags_datetime_now_and_aliased_import(self):
        assert "SIM001" in rules_hit(
            "import datetime\n"
            "t = datetime.datetime.now()\n")
        assert "SIM001" in rules_hit(
            "from time import perf_counter as pc\n"
            "t = pc()\n")

    def test_clean_virtual_clock(self):
        assert "SIM001" not in rules_hit(
            "def stamp(env):\n"
            "    return env.now\n")

    def test_clean_unrelated_attribute_named_time(self):
        # foo.time() is not the time module unless `foo` imports it.
        assert "SIM001" not in rules_hit(
            "def stamp(recorder):\n"
            "    return recorder.time()\n")


class TestSIM002UnseededRandom:
    def test_flags_bare_random_constructor(self):
        assert "SIM002" in rules_hit(
            "import random\n"
            "rng = random.Random()\n")

    def test_flags_module_level_functions_and_urandom(self):
        assert "SIM002" in rules_hit(
            "import random\n"
            "x = random.randrange(10)\n")
        assert "SIM002" in rules_hit(
            "import os\n"
            "salt = os.urandom(8)\n")

    def test_clean_seeded_constructor_and_instance_calls(self):
        assert "SIM002" not in rules_hit(
            "import random\n"
            "rng = random.Random(42)\n"
            "x = rng.randrange(10)\n")

    def test_clean_aliased_instance(self):
        assert "SIM002" not in rules_hit(
            "def draw(self):\n"
            "    return self.rng.random()\n")


class TestSIM003SetIteration:
    def test_flags_for_loop_over_set_literal(self):
        assert "SIM003" in rules_hit(
            "for table in {3, 1, 2}:\n"
            "    print(table)\n")

    def test_flags_iteration_over_set_typed_name(self):
        assert "SIM003" in rules_hit(
            "live = set()\n"
            "live.add(1)\n"
            "names = [n for n in live]\n")

    def test_flags_list_materialization_and_set_methods(self):
        assert "SIM003" in rules_hit(
            "a = {1, 2}\n"
            "b = {2, 3}\n"
            "order = list(a.union(b))\n")

    def test_clean_sorted_iteration(self):
        assert "SIM003" not in rules_hit(
            "live = {3, 1, 2}\n"
            "for table in sorted(live):\n"
            "    print(table)\n")

    def test_clean_order_insensitive_consumers(self):
        assert "SIM003" not in rules_hit(
            "live = {3, 1, 2}\n"
            "total = sum(x for x in live)\n"
            "count = len(live)\n"
            "biggest = max(live)\n")

    def test_clean_dict_iteration(self):
        # Python dicts are insertion-ordered; values() is deterministic.
        assert "SIM003" not in rules_hit(
            "d = {'a': 1}\n"
            "for v in d.values():\n"
            "    print(v)\n")


class TestSIM004ClockEquality:
    def test_flags_equality_against_now(self):
        assert "SIM004" in rules_hit(
            "def check(env, deadline):\n"
            "    return env.now == deadline\n")
        assert "SIM004" in rules_hit(
            "def check(env, t0):\n"
            "    assert env.now != t0\n")

    def test_clean_inequalities_and_arithmetic(self):
        assert "SIM004" not in rules_hit(
            "def check(env, deadline):\n"
            "    return env.now >= deadline\n")
        assert "SIM004" not in rules_hit(
            "def elapsed(env, t0):\n"
            "    return env.now - t0\n")


class TestSIM005BarrierDominance:
    BROKEN = (
        "def compact(self, entries, sink, edit, meter):\n"
        "    for entry in entries:\n"
        "        handle, name = yield from sink.next_handle(1)\n"
        "        handle.append(entry)\n"
        "    yield from self.versions.log_and_apply(edit, meter)\n")

    FIXED = (
        "def compact(self, entries, sink, edit, meter):\n"
        "    for entry in entries:\n"
        "        handle, name = yield from sink.next_handle(1)\n"
        "        handle.append(entry)\n"
        "    yield from sink.seal()\n"
        "    yield from self.versions.log_and_apply(edit, meter)\n")

    def test_flags_commit_without_barrier(self):
        assert "SIM005" in rules_hit(self.BROKEN)

    def test_clean_sealed_commit(self):
        assert "SIM005" not in rules_hit(self.FIXED)

    def test_helper_that_seals_internally_dominates(self):
        # _build_tables writes AND seals; callers need no extra barrier.
        assert "SIM005" not in rules_hit(
            "def _build_tables(self, entries, sink):\n"
            "    for entry in entries:\n"
            "        handle, _ = yield from sink.next_handle(1)\n"
            "    yield from sink.seal()\n"
            "\n"
            "def flush(self, edit, meter):\n"
            "    yield from self._build_tables([], None)\n"
            "    yield from self.versions.log_and_apply(edit, meter)\n")

    def test_helper_that_only_writes_taints_the_caller(self):
        assert "SIM005" in rules_hit(
            "def _build_tables(self, entries, sink):\n"
            "    for entry in entries:\n"
            "        handle, _ = yield from sink.next_handle(1)\n"
            "\n"
            "def flush(self, edit, meter):\n"
            "    yield from self._build_tables([], None)\n"
            "    yield from self.versions.log_and_apply(edit, meter)\n")

    def test_clean_commit_with_no_write(self):
        # Quarantine persistence commits an edit without table writes.
        assert "SIM005" not in rules_hit(
            "def persist(self, edit, meter):\n"
            "    yield from self.versions.log_and_apply(edit, meter)\n")


# -- interprocedural fixtures (SIM006-SIM010) -------------------------------

#: A module whose commit helper leaves an unsealed durable write.
SIM006_ENGINE = (
    "class Engine:\n"
    "    def commit(self, sink, record):\n"
    "        handle, _ = yield from sink.next_handle(1)\n"
    "        handle.append(record)\n")

#: Server in a *different* module acks right after the unsealed commit.
SIM006_SERVER_BROKEN = (
    "class Server:\n"
    "    def __init__(self):\n"
    "        self.db = Engine()\n"
    "    def put(self, sink, record, waiter):\n"
    "        yield from self.db.commit(sink, record)\n"
    "        waiter.succeed()\n")

SIM006_SERVER_FIXED = (
    "class Server:\n"
    "    def __init__(self):\n"
    "        self.db = Engine()\n"
    "    def put(self, sink, record, waiter):\n"
    "        yield from self.db.commit(sink, record)\n"
    "        yield from sink.seal()\n"
    "        waiter.succeed()\n")

SIM007_BROKEN = (
    "class Pool:\n"
    "    def __init__(self, env):\n"
    "        self.env = env\n"
    "        self._lock = Resource(env)\n"
    "    def drain(self):\n"
    "        yield self._lock.acquire()\n"
    "        try:\n"
    "            yield self.env.timeout(0.5)\n"
    "        finally:\n"
    "            self._lock.release()\n")

SIM007_FIXED_RETEST = (
    "class Pool:\n"
    "    def __init__(self, env):\n"
    "        self.env = env\n"
    "        self._lock = Resource(env)\n"
    "    def drain(self):\n"
    "        yield self._lock.acquire()\n"
    "        try:\n"
    "            while self._busy:\n"
    "                yield self.env.timeout(0.5)\n"
    "        finally:\n"
    "            self._lock.release()\n")

SIM008_BROKEN = (
    "class Pool:\n"
    "    def __init__(self, env):\n"
    "        self._lock = Resource(env)\n"
    "    def fill(self):\n"
    "        yield self._lock.acquire()\n"
    "        refill()\n"
    "        self._lock.release()\n")

SIM008_FIXED = (
    "class Pool:\n"
    "    def __init__(self, env):\n"
    "        self._lock = Resource(env)\n"
    "    def fill(self):\n"
    "        yield self._lock.acquire()\n"
    "        try:\n"
    "            refill()\n"
    "        finally:\n"
    "            self._lock.release()\n")

SIM009_ENGINE = (
    "class Engine:\n"
    "    def write(self, batch):\n"
    "        handle, _ = yield from self.sink.next_handle(1)\n"
    "        handle.append(batch)\n")

SIM009_LINK_BROKEN = (
    "class Link:\n"
    "    def __init__(self, shard):\n"
    "        self.db = Engine()\n"
    "        self.shard = shard\n"
    "        self.epoch = 1\n"
    "    def apply(self, batch):\n"
    "        yield from self.db.write(batch)\n")

SIM009_LINK_FIXED = (
    "class Link:\n"
    "    def __init__(self, shard):\n"
    "        self.db = Engine()\n"
    "        self.shard = shard\n"
    "        self.epoch = 1\n"
    "    def apply(self, batch):\n"
    "        if self.epoch < self.shard.epoch:\n"
    "            return\n"
    "        yield from self.db.write(batch)\n")

SIM010_BROKEN = (
    "def pump(env):\n"
    "    yield env.timeout(1)\n"
    "def boot(env):\n"
    "    pump(env)\n")

SIM010_FIXED = (
    "def pump(env):\n"
    "    yield env.timeout(1)\n"
    "def boot(env):\n"
    "    yield from pump(env)\n")

SIM011_BROKEN = {
    "src/repro/util.py":
        "import time\nt = time.time()  # simcheck: waive[SIM001]\n"}

SIM011_FIXED = {
    "src/repro/util.py":
        "import time\n"
        "t = time.time()  # simcheck: waive[SIM001] - wall clock feeds"
        " the report header only\n"}


class TestSIM006InterprocAckBeforeBarrier:
    def test_two_module_ack_path_that_sim005_misses(self):
        # The write is in engine.py, the ack in server.py: per-file
        # SIM005 sees neither half...
        assert "SIM005" not in rules_hit(SIM006_SERVER_BROKEN)
        assert "SIM006" not in rules_hit(SIM006_SERVER_BROKEN)
        # ...but the project-wide walk connects them.
        hits = rules_hit_multi({"engine.py": SIM006_ENGINE,
                                "server.py": SIM006_SERVER_BROKEN})
        assert "SIM006" in hits

    def test_clean_when_caller_seals_before_acking(self):
        hits = rules_hit_multi({"engine.py": SIM006_ENGINE,
                                "server.py": SIM006_SERVER_FIXED})
        assert "SIM006" not in hits

    def test_direct_ack_after_unsealed_write_same_function(self):
        assert "SIM006" in rules_hit(
            "def put(sink, record, waiter):\n"
            "    handle, _ = yield from sink.next_handle(1)\n"
            "    handle.append(record)\n"
            "    waiter.succeed()\n")

    def test_clean_ack_after_barrier_same_function(self):
        assert "SIM006" not in rules_hit(
            "def put(sink, record, waiter):\n"
            "    handle, _ = yield from sink.next_handle(1)\n"
            "    handle.append(record)\n"
            "    yield from sink.seal()\n"
            "    waiter.succeed()\n")


class TestSIM007SleepWhileHoldingLock:
    def test_flags_direct_sleep_under_lock(self):
        assert "SIM007" in rules_hit(SIM007_BROKEN)

    def test_clean_retest_loop_counts_as_revalidation(self):
        assert "SIM007" not in rules_hit(SIM007_FIXED_RETEST)

    def test_clean_release_before_sleep(self):
        assert "SIM007" not in rules_hit(
            "class Pool:\n"
            "    def __init__(self, env):\n"
            "        self.env = env\n"
            "        self._lock = Resource(env)\n"
            "    def drain(self):\n"
            "        yield self._lock.acquire()\n"
            "        self._lock.release()\n"
            "        yield self.env.timeout(0.5)\n")

    def test_flags_sleep_reached_through_a_callee(self):
        assert "SIM007" in rules_hit(
            "class Pool:\n"
            "    def __init__(self, env):\n"
            "        self.env = env\n"
            "        self._lock = Resource(env)\n"
            "    def _backoff(self):\n"
            "        yield self.env.timeout(0.5)\n"
            "    def drain(self):\n"
            "        yield self._lock.acquire()\n"
            "        try:\n"
            "            yield from self._backoff()\n"
            "        finally:\n"
            "            self._lock.release()\n")

    def test_clean_capacity_two_semaphore_is_not_a_mutex(self):
        assert "SIM007" not in rules_hit(
            "class Pool:\n"
            "    def __init__(self, env):\n"
            "        self.env = env\n"
            "        self._chan = Resource(env, capacity=2)\n"
            "    def drain(self):\n"
            "        yield self._chan.acquire()\n"
            "        try:\n"
            "            yield self.env.timeout(0.5)\n"
            "        finally:\n"
            "            self._chan.release()\n")


class TestSIM008ExceptionUnsafeRelease:
    def test_flags_release_outside_finally(self):
        assert "SIM008" in rules_hit(SIM008_BROKEN)

    def test_clean_release_in_finally(self):
        assert "SIM008" not in rules_hit(SIM008_FIXED)

    def test_clean_lock_handoff_with_no_release(self):
        # _stall-style helpers re-acquire for the caller: acquire with
        # no matching release in the same function is a handoff.
        assert "SIM008" not in rules_hit(
            "class Pool:\n"
            "    def __init__(self, env):\n"
            "        self._lock = Resource(env)\n"
            "    def handoff(self):\n"
            "        yield self._lock.acquire()\n")


class TestSIM009UnfencedClusterIngestion:
    def test_flags_unfenced_cross_layer_write(self):
        hits = rules_hit_multi({"engine.py": SIM009_ENGINE,
                                "cluster.py": SIM009_LINK_BROKEN})
        assert "SIM009" in hits

    def test_clean_with_upstream_epoch_check(self):
        hits = rules_hit_multi({"engine.py": SIM009_ENGINE,
                                "cluster.py": SIM009_LINK_FIXED})
        assert "SIM009" not in hits

    def test_rule_is_scoped_to_cluster_code(self):
        # The same unfenced shape outside cluster/ modules is fine.
        hits = rules_hit_multi({"engine.py": SIM009_ENGINE,
                                "pipeline.py": SIM009_LINK_BROKEN})
        assert "SIM009" not in hits


class TestSIM010UndrivenGenerator:
    def test_flags_bare_statement_call_to_generator(self):
        assert "SIM010" in rules_hit(SIM010_BROKEN)

    def test_clean_yield_from(self):
        assert "SIM010" not in rules_hit(SIM010_FIXED)

    def test_clean_unresolved_call_is_not_flagged(self):
        assert "SIM010" not in rules_hit(
            "def boot(env):\n"
            "    launch(env)\n")


class TestSIM011UnjustifiedWaiver:
    def test_flags_bare_waiver_in_library_code(self):
        assert rules_hit_multi(SIM011_BROKEN) == {"SIM011"}

    def test_clean_justified_waiver_in_library_code(self):
        assert rules_hit_multi(SIM011_FIXED) == set()

    def test_test_code_needs_no_justification(self):
        sources = {"tests/test_x.py":
                   "import time\nt = time.time()  # simcheck: waive[SIM001]\n"}
        assert rules_hit_multi(sources) == set()


class TestWaivers:
    def test_waiver_suppresses_named_rule(self):
        assert rules_hit(
            "import random\n"
            "rng = random.Random()  # simcheck: waive[SIM002]\n") == set()

    def test_waiver_star_suppresses_all(self):
        assert rules_hit(
            "import time\n"
            "t = time.time()  # simcheck: waive[*]\n") == set()

    def test_waiver_for_other_rule_does_not_suppress(self):
        assert "SIM002" in rules_hit(
            "import random\n"
            "rng = random.Random()  # simcheck: waive[SIM001]\n")

    def test_comma_list_waives_each_named_rule(self):
        assert rules_hit(
            "import time\n"
            "import random\n"
            "x = (time.time(), random.Random())"
            "  # simcheck: waive[SIM001, SIM002]\n") == set()

    def test_decorator_line_waiver_covers_the_def_line(self):
        waivers = _parse_waivers(
            "@retry  # simcheck: waive[SIM007]\n"
            "def f():\n"
            "    pass\n")
        assert waivers[1] == {"SIM007"}
        assert waivers[2] == {"SIM007"}

    def test_standalone_comment_waiver_covers_the_next_code_line(self):
        assert rules_hit(
            "import time\n"
            "# simcheck: waive[SIM001] - report header timestamp\n"
            "t = time.time()\n") == set()

    def test_docstring_mention_is_not_a_waiver(self):
        # The waiver syntax inside a string literal (e.g. this very
        # test, or the linter's own rule table) must not suppress
        # anything — and must not demand a justification either.
        hits = rules_hit_multi({
            "src/repro/doc.py":
                '"""Docs quoting # simcheck: waive[SIM001] syntax."""\n'
                "import time\n"
                "t = time.time()\n"})
        assert hits == {"SIM001"}


class TestDriver:
    def test_findings_carry_location_and_rule(self):
        findings = check_source("import time\nt = time.time()\n", path="x.py")
        assert len(findings) == 1
        f = findings[0]
        assert (f.path, f.line, f.rule) == ("x.py", 2, "SIM001")
        assert f.render().startswith("x.py:2:")

    def test_every_rule_id_is_exercised_by_fixtures(self):
        broken = {
            "SIM001": {"m.py": "import time\nt = time.time()\n"},
            "SIM002": {"m.py": "import random\nr = random.Random()\n"},
            "SIM003": {"m.py": "for x in {1, 2}:\n    print(x)\n"},
            "SIM004": {"m.py": "def f(env):\n    return env.now == 0.0\n"},
            "SIM005": {"m.py": TestSIM005BarrierDominance.BROKEN},
            "SIM006": {"engine.py": SIM006_ENGINE,
                       "server.py": SIM006_SERVER_BROKEN},
            "SIM007": {"m.py": SIM007_BROKEN},
            "SIM008": {"m.py": SIM008_BROKEN},
            "SIM009": {"engine.py": SIM009_ENGINE,
                       "cluster.py": SIM009_LINK_BROKEN},
            "SIM010": {"m.py": SIM010_BROKEN},
            "SIM011": SIM011_BROKEN,
        }
        assert set(broken) == set(RULES)
        for rule, sources in broken.items():
            assert rule in rules_hit_multi(sources), rule

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import time\nt = time.time()\n")
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out

    def test_syntax_error_is_reported_not_raised(self):
        findings = check_source("def broken(:\n", path="bad.py")
        assert findings and findings[0].rule == "SIM000"


class TestCLI:
    @pytest.fixture
    def dirty(self, tmp_path):
        path = tmp_path / "dirty.py"
        path.write_text("import time\nimport random\n"
                        "t = time.time()\nr = random.Random()\n")
        return path

    def test_json_output_is_machine_readable(self, dirty, capsys):
        assert main([str(dirty), "--json", "--no-baseline"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 2
        assert {f["rule"] for f in payload["findings"]} == {"SIM001",
                                                            "SIM002"}
        assert all(f["line"] > 0 for f in payload["findings"])

    def test_gha_annotations(self, dirty, capsys):
        assert main([str(dirty), "--gha", "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=SIM001" in out

    def test_rule_filter(self, dirty, capsys):
        assert main([str(dirty), "--rule", "SIM002",
                     "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "SIM002" in out and "SIM001" not in out

    def test_unknown_rule_filter_is_a_usage_error(self, dirty):
        with pytest.raises(SystemExit) as exc:
            main([str(dirty), "--rule", "SIM999"])
        assert exc.value.code == 2

    def test_exit_2_on_parse_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        assert main([str(bad), "--no-baseline"]) == 2
        assert "SIM000" in capsys.readouterr().out

    def test_effects_dump_is_deterministic(self, capsys):
        target = str(SRC_REPRO / "cluster")
        assert main([target, "--effects"]) == 0
        first = capsys.readouterr().out
        assert main([target, "--effects"]) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert any("ReplicationLink" in name for name in payload)


class TestBaseline:
    def test_load_rejects_unjustified_entries(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"entries": [
            {"rule": "SIM009", "path": "x.py", "justification": "short"}]}))
        with pytest.raises(BaselineError):
            load_baseline(str(path))

    def test_load_rejects_malformed_files(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{\"entries\": 7}")
        with pytest.raises(BaselineError):
            load_baseline(str(path))

    def test_apply_subtracts_matches_and_reports_stale(self):
        findings = check_source(
            "import time\nt = time.time()\n", path="src/repro/x.py")
        entries = [
            {"rule": "SIM001", "path": "src/repro/x.py",
             "justification": "wall clock feeds the report header only"},
            {"rule": "SIM005", "path": "src/repro/gone.py",
             "justification": "this entry is stale and must be reported"},
        ]
        kept, suppressed, stale = apply_baseline(findings, entries)
        assert kept == [] and suppressed == 1
        assert [e["rule"] for e in stale] == ["SIM005"]

    def test_cli_baseline_suppresses_and_unbaselined_fails(self, tmp_path,
                                                           capsys):
        dirty = tmp_path / "mod.py"
        dirty.write_text("import time\nt = time.time()\n"
                         "import random\nr = random.Random()\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"entries": [
            {"rule": "SIM001", "path": "mod.py",
             "justification": "wall clock feeds the report header only"}]}))
        rc = main([str(dirty), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "SIM002" in out and "SIM001" not in out

    def test_committed_baseline_entries_are_all_live_and_justified(self):
        entries = load_baseline(str(BASELINE))
        for entry in entries:
            assert len(entry["justification"].strip()) >= 20
        findings = check_paths([str(SRC_REPRO), str(REPO_ROOT / "tests"),
                                str(REPO_ROOT / "benchmarks")])
        _kept, suppressed, stale = apply_baseline(findings, entries)
        assert stale == [], "baseline entries that no longer fire"
        assert suppressed > 0


class TestSelfCheck:
    def test_src_repro_is_simcheck_clean_modulo_baseline(self):
        findings = check_paths([str(SRC_REPRO)])
        entries = load_baseline(str(BASELINE))
        kept, _suppressed, _stale = apply_baseline(findings, entries)
        assert kept == [], "\n".join(f.render() for f in kept)

    def test_tests_and_benchmarks_are_simcheck_clean(self):
        findings = check_paths([str(REPO_ROOT / "tests"),
                                str(REPO_ROOT / "benchmarks")])
        entries = load_baseline(str(BASELINE))
        kept, _suppressed, _stale = apply_baseline(findings, entries)
        assert kept == [], "\n".join(f.render() for f in kept)

    def test_cli_module_runs_clean_on_the_tree(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.tools.simcheck", str(SRC_REPRO)],
            capture_output=True, text=True,
            cwd=str(SRC_REPRO.parent.parent),
            env={"PYTHONPATH": str(SRC_REPRO.parent), "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stdout + proc.stderr
