"""Unit and property tests for the SkipList and MemTable."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lsm import MemTable, SkipList
from repro.lsm.codec import VALUE_TYPE_DELETION, VALUE_TYPE_VALUE
from repro.lsm.memtable import DELETED, FOUND, NOT_FOUND


class TestSkipList:
    def test_insert_and_get(self):
        sl = SkipList(seed=1)
        sl.insert(b"b", 2)
        sl.insert(b"a", 1)
        assert sl.get(b"a") == 1
        assert sl.get(b"b") == 2
        assert sl.get(b"c") is None

    def test_duplicate_rejected(self):
        sl = SkipList(seed=1)
        sl.insert(b"k", 1)
        with pytest.raises(KeyError):
            sl.insert(b"k", 2)

    def test_iteration_is_sorted(self):
        sl = SkipList(seed=1)
        for key in (b"d", b"a", b"c", b"b"):
            sl.insert(key, key)
        assert [k for k, _v in sl] == [b"a", b"b", b"c", b"d"]

    def test_seek_finds_first_at_or_after(self):
        sl = SkipList(seed=1)
        for key in (b"b", b"d", b"f"):
            sl.insert(key, None)
        assert sl.seek(b"a")[0] == b"b"
        assert sl.seek(b"b")[0] == b"b"
        assert sl.seek(b"c")[0] == b"d"
        assert sl.seek(b"g") is None

    def test_iter_from(self):
        sl = SkipList(seed=1)
        for i in range(10):
            sl.insert(b"%02d" % i, i)
        assert [v for _k, v in sl.iter_from(b"07")] == [7, 8, 9]

    def test_contains(self):
        sl = SkipList(seed=1)
        sl.insert(b"x", 1)
        assert b"x" in sl
        assert b"y" not in sl

    def test_len(self):
        sl = SkipList(seed=1)
        assert len(sl) == 0
        for i in range(100):
            sl.insert(i, i)
        assert len(sl) == 100

    @settings(max_examples=50, deadline=None)
    @given(st.sets(st.binary(min_size=1, max_size=16), max_size=200))
    def test_matches_sorted_reference(self, keys):
        sl = SkipList(seed=7)
        for key in keys:
            sl.insert(key, key)
        assert [k for k, _v in sl] == sorted(keys)

    @settings(max_examples=30, deadline=None)
    @given(st.sets(st.integers(0, 10_000), min_size=1, max_size=300),
           st.integers(0, 10_000))
    def test_seek_matches_reference(self, keys, probe):
        sl = SkipList(seed=7)
        for key in keys:
            sl.insert(key, None)
        expected = min((k for k in keys if k >= probe), default=None)
        found = sl.seek(probe)
        assert (found[0] if found else None) == expected


class TestMemTable:
    def test_put_get(self):
        mem = MemTable(seed=1)
        mem.add(1, VALUE_TYPE_VALUE, b"k", b"v")
        assert mem.get(b"k") == (FOUND, b"v")

    def test_missing_key(self):
        mem = MemTable(seed=1)
        assert mem.get(b"nope") == (NOT_FOUND, None)

    def test_newest_version_wins(self):
        mem = MemTable(seed=1)
        mem.add(1, VALUE_TYPE_VALUE, b"k", b"old")
        mem.add(2, VALUE_TYPE_VALUE, b"k", b"new")
        assert mem.get(b"k") == (FOUND, b"new")

    def test_tombstone_shadows(self):
        mem = MemTable(seed=1)
        mem.add(1, VALUE_TYPE_VALUE, b"k", b"v")
        mem.add(2, VALUE_TYPE_DELETION, b"k", b"")
        assert mem.get(b"k") == (DELETED, None)

    def test_snapshot_reads_see_past(self):
        mem = MemTable(seed=1)
        mem.add(5, VALUE_TYPE_VALUE, b"k", b"v5")
        mem.add(9, VALUE_TYPE_VALUE, b"k", b"v9")
        assert mem.get(b"k", sequence=5) == (FOUND, b"v5")
        assert mem.get(b"k", sequence=8) == (FOUND, b"v5")
        assert mem.get(b"k", sequence=9) == (FOUND, b"v9")
        assert mem.get(b"k", sequence=4) == (NOT_FOUND, None)

    def test_entries_ordered_by_internal_key(self):
        mem = MemTable(seed=1)
        mem.add(1, VALUE_TYPE_VALUE, b"b", b"1")
        mem.add(3, VALUE_TYPE_VALUE, b"a", b"3")
        mem.add(2, VALUE_TYPE_VALUE, b"a", b"2")
        entries = list(mem.entries())
        # user key ascending; within a key, newest (highest seq) first
        assert [(k, s) for k, s, _t, _v in entries] == [
            (b"a", 3), (b"a", 2), (b"b", 1)]

    def test_memory_accounting_grows(self):
        mem = MemTable(seed=1)
        before = mem.approximate_memory_usage
        mem.add(1, VALUE_TYPE_VALUE, b"key", b"x" * 1000)
        assert mem.approximate_memory_usage >= before + 1000

    def test_entries_from(self):
        mem = MemTable(seed=1)
        for i, key in enumerate((b"a", b"b", b"c")):
            mem.add(i + 1, VALUE_TYPE_VALUE, key, key)
        keys = [k for k, _s, _t, _v in mem.entries_from(b"b")]
        assert keys == [b"b", b"c"]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.binary(min_size=1, max_size=8),
                              st.binary(max_size=8)),
                    min_size=1, max_size=100))
    def test_matches_dict_model(self, ops):
        mem = MemTable(seed=7)
        model = {}
        for seq, (key, value) in enumerate(ops, start=1):
            mem.add(seq, VALUE_TYPE_VALUE, key, value)
            model[key] = value
        for key, value in model.items():
            assert mem.get(key) == (FOUND, value)
