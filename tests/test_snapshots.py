"""Tests for pinned read snapshots (LevelDB's GetSnapshot semantics)."""

import pytest

from repro.core import BoLTEngine, bolt_options
from repro.lsm import LSMEngine, Options
from repro.lsm.codec import VALUE_TYPE_DELETION, VALUE_TYPE_VALUE
from repro.lsm.iterators import collapse_versions
from repro.sim import Environment
from repro.storage import BlockDevice, PageCache, SimFS

KB = 1 << 10


def fresh_db(options=None):
    env = Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    opts = options or Options(memtable_size=16 * KB, sstable_size=8 * KB,
                              level1_max_bytes=32 * KB)
    db = LSMEngine.open_sync(env, fs, opts, "db")
    return env, fs, db


def put(key, seq, value=b"v"):
    return (key, seq, VALUE_TYPE_VALUE, value)


def tomb(key, seq):
    return (key, seq, VALUE_TYPE_DELETION, b"")


class TestCollapseWithSnapshots:
    def test_keeps_one_version_per_interval(self):
        entries = [put(b"k", 20, b"v20"), put(b"k", 12, b"v12"),
                   put(b"k", 8, b"v8"), put(b"k", 3, b"v3")]
        kept = list(collapse_versions(entries, False, snapshots=[10]))
        # v20 newest; v8 is the newest version <= snapshot 10.
        assert kept == [put(b"k", 20, b"v20"), put(b"k", 8, b"v8")]

    def test_no_snapshots_keeps_newest_only(self):
        entries = [put(b"k", 9), put(b"k", 5), put(b"k", 1)]
        assert list(collapse_versions(entries, False)) == [put(b"k", 9)]

    def test_multiple_snapshots(self):
        entries = [put(b"k", 30, b"c"), put(b"k", 15, b"b"), put(b"k", 5, b"a")]
        kept = list(collapse_versions(entries, False, snapshots=[10, 20]))
        assert kept == entries  # one per interval: (20,inf), (10,20], (0,10]

    def test_tombstone_retained_while_snapshot_older(self):
        entries = [tomb(b"k", 12), put(b"k", 4, b"old")]
        kept = list(collapse_versions(entries, True, snapshots=[8]))
        # Snapshot 8 must still see b"old"; the tombstone must keep
        # shadowing it for latest readers.
        assert kept == [tomb(b"k", 12), put(b"k", 4, b"old")]

    def test_tombstone_dropped_below_oldest_snapshot(self):
        entries = [tomb(b"k", 5), put(b"k", 2)]
        kept = list(collapse_versions(entries, True, snapshots=[9]))
        assert kept == []


class TestSnapshotReads:
    def test_snapshot_freezes_view(self):
        _env, _fs, db = fresh_db()
        db.put_sync(b"k", b"before")
        snap = db.snapshot()
        db.put_sync(b"k", b"after")
        assert db.get_sync(b"k") == b"after"
        assert db.get_sync(b"k", snapshot=snap) == b"before"
        snap.release()

    def test_snapshot_hides_later_deletes(self):
        _env, _fs, db = fresh_db()
        db.put_sync(b"k", b"v")
        snap = db.snapshot()
        db.delete_sync(b"k")
        assert db.get_sync(b"k") is None
        assert db.get_sync(b"k", snapshot=snap) == b"v"
        snap.release()

    def test_snapshot_survives_flush_and_compaction(self):
        env, _fs, db = fresh_db()
        for i in range(200):
            db.put_sync(b"key%04d" % i, b"old-%d" % i)
        snap = db.snapshot()
        for i in range(200):
            db.put_sync(b"key%04d" % i, b"new-%d" % i)
        env.run_until(env.process(db.flush_all()))  # compact everything
        for i in (0, 57, 199):
            assert db.get_sync(b"key%04d" % i) == b"new-%d" % i
            assert db.get_sync(b"key%04d" % i,
                               snapshot=snap) == b"old-%d" % i
        snap.release()

    def test_snapshot_scan(self):
        env, _fs, db = fresh_db()
        for i in range(20):
            db.put_sync(b"key%02d" % i, b"old")
        snap = db.snapshot()
        for i in range(20):
            db.put_sync(b"key%02d" % i, b"new")
        db.put_sync(b"zzz", b"unseen")
        result = db.scan_sync(b"key", 5, snapshot=snap)
        assert result == [(b"key%02d" % i, b"old") for i in range(5)]
        full = db.scan_sync(b"key", 100, snapshot=snap)
        assert len(full) == 20  # b"zzz" invisible
        snap.release()

    def test_release_allows_reclamation(self):
        env, _fs, db = fresh_db(Options(
            memtable_size=16 * KB, sstable_size=8 * KB,
            level1_max_bytes=32 * KB, l0_compaction_trigger=1))
        db.put_sync(b"k", b"old")
        snap = db.snapshot()
        db.put_sync(b"k", b"new")
        env.run_until(env.process(db.flush_all()))
        assert db.live_snapshot_sequences() == [snap.sequence]
        snap.release()
        assert db.live_snapshot_sequences() == []
        # After release, further compactions may drop the old version;
        # latest reads are unaffected.
        env.run_until(env.process(db.flush_all()))
        assert db.get_sync(b"k") == b"new"

    def test_context_manager(self):
        _env, _fs, db = fresh_db()
        db.put_sync(b"k", b"v1")
        with db.snapshot() as snap:
            db.put_sync(b"k", b"v2")
            assert db.get_sync(b"k", snapshot=snap) == b"v1"
        assert snap.released
        assert db.live_snapshot_sequences() == []

    def test_refcounted_duplicate_sequences(self):
        _env, _fs, db = fresh_db()
        db.put_sync(b"k", b"v")
        first = db.snapshot()
        second = db.snapshot()  # same sequence
        assert first.sequence == second.sequence
        first.release()
        assert db.live_snapshot_sequences() == [second.sequence]
        second.release()
        assert db.live_snapshot_sequences() == []

    def test_double_release_is_safe(self):
        _env, _fs, db = fresh_db()
        snap = db.snapshot()
        snap.release()
        snap.release()
        assert db.live_snapshot_sequences() == []

    def test_snapshot_on_bolt_engine(self):
        env = Environment()
        fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
        db = BoLTEngine.open_sync(env, fs, bolt_options(1024), "db")
        for i in range(300):
            db.put_sync(b"key%04d" % i, b"old")
        snap = db.snapshot()
        for i in range(300):
            db.put_sync(b"key%04d" % i, b"new")
        env.run_until(env.process(db.flush_all()))
        assert db.get_sync(b"key0042", snapshot=snap) == b"old"
        assert db.get_sync(b"key0042") == b"new"
        snap.release()


class TestReleasedSnapshotGuard:
    def test_read_through_released_snapshot_rejected(self):
        _env, _fs, db = fresh_db()
        db.put_sync(b"k", b"v")
        snap = db.snapshot()
        snap.release()
        with pytest.raises(ValueError, match="released snapshot"):
            db.get_sync(b"k", snapshot=snap)
        with pytest.raises(ValueError, match="released snapshot"):
            db.scan_sync(b"k", 5, snapshot=snap)
