"""Unit tests for the SSTable builder/reader, including logical tables."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lsm import LEVELDB_FORMAT, ROCKSDB_FORMAT, CorruptionError
from repro.lsm.codec import VALUE_TYPE_DELETION, VALUE_TYPE_VALUE, MAX_SEQUENCE
from repro.lsm.memtable import DELETED, FOUND, NOT_FOUND
from repro.lsm.sstable import SSTableBuilder, SSTableReader


def build_table(fs, run, entries, fmt=LEVELDB_FORMAT, name="t.ldb"):
    def scenario():
        handle = yield from fs.create(name)
        builder = SSTableBuilder(handle, fmt)
        for key, seq, vtype, value in entries:
            builder.add(key, seq, vtype, value)
        info = builder.finish()
        yield from handle.fsync()
        reader = yield from SSTableReader.open(1, handle, fmt,
                                               info.base_offset, info.length)
        return info, reader

    return run(scenario())


def simple_entries(n=100, prefix=b"key"):
    return [(b"%s%06d" % (prefix, i), i + 1, VALUE_TYPE_VALUE, b"value-%d" % i)
            for i in range(n)]


class TestBuilderReader:
    def test_roundtrip_all_entries(self, fs, run):
        entries = simple_entries(200)
        _info, reader = build_table(fs, run, entries)

        def read_all():
            return (yield from reader.iter_entries())

        assert run(read_all()) == entries

    def test_point_lookup_found(self, fs, run):
        entries = simple_entries(150)
        _info, reader = build_table(fs, run, entries)

        def lookup(key):
            return (yield from reader.get(key, MAX_SEQUENCE))

        assert run(lookup(b"key000077")) == (FOUND, b"value-77")
        assert run(lookup(b"key000000")) == (FOUND, b"value-0")
        assert run(lookup(b"key000149")) == (FOUND, b"value-149")

    def test_point_lookup_missing(self, fs, run):
        _info, reader = build_table(fs, run, simple_entries(50))

        def lookup(key):
            return (yield from reader.get(key, MAX_SEQUENCE))

        assert run(lookup(b"key999999")) == (NOT_FOUND, None)
        assert run(lookup(b"aaa")) == (NOT_FOUND, None)

    def test_tombstone_read_back(self, fs, run):
        entries = [(b"dead", 5, VALUE_TYPE_DELETION, b""),
                   (b"live", 4, VALUE_TYPE_VALUE, b"v")]
        _info, reader = build_table(fs, run, entries)

        def lookup(key):
            return (yield from reader.get(key, MAX_SEQUENCE))

        assert run(lookup(b"dead")) == (DELETED, None)
        assert run(lookup(b"live")) == (FOUND, b"v")

    def test_snapshot_visibility(self, fs, run):
        entries = [(b"k", 9, VALUE_TYPE_VALUE, b"new"),
                   (b"k", 3, VALUE_TYPE_VALUE, b"old")]
        _info, reader = build_table(fs, run, entries)

        def lookup(seq):
            return (yield from reader.get(b"k", seq))

        assert run(lookup(MAX_SEQUENCE)) == (FOUND, b"new")
        assert run(lookup(5)) == (FOUND, b"old")
        assert run(lookup(2)) == (NOT_FOUND, None)

    def test_out_of_order_keys_rejected(self, fs, run):
        def scenario():
            handle = yield from fs.create("t")
            builder = SSTableBuilder(handle, LEVELDB_FORMAT)
            builder.add(b"b", 1, VALUE_TYPE_VALUE, b"")
            builder.add(b"a", 2, VALUE_TYPE_VALUE, b"")

        with pytest.raises(ValueError):
            run(scenario())

    def test_empty_table_rejected(self, fs, run):
        def scenario():
            handle = yield from fs.create("t")
            SSTableBuilder(handle, LEVELDB_FORMAT).finish()

        with pytest.raises(ValueError):
            run(scenario())

    def test_info_reports_bounds_and_counts(self, fs, run):
        entries = simple_entries(42)
        info, _reader = build_table(fs, run, entries)
        assert info.num_entries == 42
        assert info.smallest == b"key000000"
        assert info.largest == b"key000041"
        assert info.length > 0
        assert info.index_size > 0

    def test_per_record_overhead_shapes_size(self, fs, run):
        """§4.3.3: the LevelDB format spends ~100 B/record, RocksDB ~24."""
        entries = [(b"%023d" % i, i + 1, VALUE_TYPE_VALUE, b"v" * 100)
                   for i in range(500)]
        info_ldb, _ = build_table(fs, run, entries, LEVELDB_FORMAT, "ldb")
        info_rdb, _ = build_table(fs, run, entries, ROCKSDB_FORMAT, "rdb")
        per_ldb = info_ldb.length / 500
        per_rdb = info_rdb.length / 500
        # 223 vs 141 bytes in the paper: a 1.4-1.7x gap.
        assert 1.3 < per_ldb / per_rdb < 1.9

    def test_iter_entries_from(self, fs, run):
        entries = simple_entries(300)
        _info, reader = build_table(fs, run, entries)

        def scenario():
            return (yield from reader.iter_entries_from(b"key000250"))

        result = run(scenario())
        assert result == entries[250:]

    def test_index_size_proportional_to_table(self, fs, run):
        small_info, _ = build_table(fs, run, simple_entries(50), name="s")
        large_info, _ = build_table(fs, run, simple_entries(2000), name="l")
        assert large_info.index_size > small_info.index_size * 10


class TestLogicalTables:
    def test_multiple_tables_share_one_file(self, fs, run):
        """§3.2: logical SSTables live at offsets inside one file."""
        def scenario():
            handle = yield from fs.create("container.cf")
            infos = []
            for part in range(3):
                builder = SSTableBuilder(handle, LEVELDB_FORMAT)
                for i in range(50):
                    builder.add(b"p%d-%04d" % (part, i), i + 1,
                                VALUE_TYPE_VALUE, b"v%d" % part)
                infos.append(builder.finish())
            yield from handle.fsync()
            readers = []
            for uid, info in enumerate(infos):
                reader = yield from SSTableReader.open(
                    uid, handle, LEVELDB_FORMAT, info.base_offset, info.length)
                readers.append(reader)
            results = []
            for part, reader in enumerate(readers):
                state, value = yield from reader.get(
                    b"p%d-%04d" % (part, 7), MAX_SEQUENCE)
                results.append((state, value))
            return infos, results

        infos, results = run(scenario())
        assert infos[0].base_offset == 0
        assert infos[1].base_offset == infos[0].length
        assert infos[2].base_offset == infos[0].length + infos[1].length
        assert results == [(FOUND, b"v0"), (FOUND, b"v1"), (FOUND, b"v2")]

    def test_logical_table_survives_sibling_hole_punch(self, fs, run):
        """§3.2: punching a dead logical SSTable must not corrupt its
        live neighbours in the same compaction file."""
        def scenario():
            handle = yield from fs.create("c.cf")
            infos = []
            for part in range(2):
                builder = SSTableBuilder(handle, LEVELDB_FORMAT)
                for i in range(200):
                    builder.add(b"p%d-%06d" % (part, i), i + 1,
                                VALUE_TYPE_VALUE, b"x" * 64)
                infos.append(builder.finish())
            yield from handle.fsync()
            handle.punch_hole(infos[0].base_offset, infos[0].length)
            reader = yield from SSTableReader.open(
                1, handle, LEVELDB_FORMAT,
                infos[1].base_offset, infos[1].length)
            return (yield from reader.get(b"p1-%06d" % 123, MAX_SEQUENCE))

        assert run(scenario()) == (FOUND, b"x" * 64)


class TestCorruptionDetection:
    def test_corrupt_data_block_detected(self, fs, run):
        entries = simple_entries(100)

        def scenario():
            handle = yield from fs.create("t")
            builder = SSTableBuilder(handle, LEVELDB_FORMAT)
            for key, seq, vtype, value in entries:
                builder.add(key, seq, vtype, value)
            info = builder.finish()
            yield from handle.fsync()
            handle.write_at(10, b"\xde\xad\xbe\xef")  # corrupt first block
            reader = yield from SSTableReader.open(
                1, handle, LEVELDB_FORMAT, info.base_offset, info.length)
            yield from reader.get(entries[0][0], MAX_SEQUENCE)

        with pytest.raises(CorruptionError):
            run(scenario())

    def test_corrupt_footer_detected(self, fs, run):
        def scenario():
            handle = yield from fs.create("t")
            builder = SSTableBuilder(handle, LEVELDB_FORMAT)
            builder.add(b"k", 1, VALUE_TYPE_VALUE, b"v")
            info = builder.finish()
            handle.write_at(info.length - 6, b"\xff\xff")
            yield from SSTableReader.open(1, handle, LEVELDB_FORMAT,
                                          info.base_offset, info.length)

        with pytest.raises(CorruptionError):
            run(scenario())

    def test_zeroed_table_detected(self, fs, run):
        """A table whose unsynced pages were lost must fail loudly."""
        def scenario():
            handle = yield from fs.create("t")
            builder = SSTableBuilder(handle, LEVELDB_FORMAT)
            for key, seq, vtype, value in simple_entries(500):
                builder.add(key, seq, vtype, value)
            info = builder.finish()
            fs.crash(survive_probability=0.0)  # never fsynced
            fresh = yield from fs.open("t")
            yield from SSTableReader.open(1, fresh, LEVELDB_FORMAT,
                                          info.base_offset, info.length)

        with pytest.raises(CorruptionError):
            run(scenario())


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.dictionaries(st.binary(min_size=1, max_size=16),
                           st.binary(max_size=64),
                           min_size=1, max_size=120))
    def test_every_written_key_readable(self, data):
        from repro.sim import Environment
        from repro.storage import BlockDevice, PageCache, SimFS
        env = Environment()
        fs = SimFS(env, BlockDevice(env), PageCache(1 << 24))

        def scenario():
            handle = yield from fs.create("t")
            builder = SSTableBuilder(handle, LEVELDB_FORMAT)
            for seq, key in enumerate(sorted(data), start=1):
                builder.add(key, seq, VALUE_TYPE_VALUE, data[key])
            info = builder.finish()
            reader = yield from SSTableReader.open(
                1, handle, LEVELDB_FORMAT, info.base_offset, info.length)
            for key, value in data.items():
                state, got = yield from reader.get(key, MAX_SEQUENCE)
                assert state == FOUND and got == value

        env.run_until(env.process(scenario()))
