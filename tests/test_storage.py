"""Unit tests for the storage substrate: device, page cache, SimFS."""

import random

import pytest

from repro.sim import Environment
from repro.storage import (
    BlockDevice,
    FileSystemError,
    HARD_DISK,
    NVME_SSD,
    PAGE_SIZE,
    PageCache,
    SATA_SSD,
    SimFS,
)

MB = 1 << 20


class TestBlockDevice:
    def test_write_cost_is_overhead_plus_bandwidth(self, env, run):
        dev = BlockDevice(env, SATA_SSD)
        run(dev.write(MB))
        expected = SATA_SSD.per_request_overhead + MB / SATA_SSD.seq_write_bw
        assert env.now == pytest.approx(expected)

    def test_random_read_pays_latency(self, env, run):
        dev = BlockDevice(env, SATA_SSD)
        run(dev.read(4096, sequential=False))
        assert env.now >= SATA_SSD.rand_read_latency

    def test_sequential_read_skips_latency(self, env):
        dev_seq = BlockDevice(Environment(), SATA_SSD)
        dev_rand = BlockDevice(Environment(), SATA_SSD)
        env_seq, env_rand = dev_seq.env, dev_rand.env
        env_seq.run_until(env_seq.process(dev_seq.read(MB, sequential=True)))
        env_rand.run_until(env_rand.process(dev_rand.read(MB, sequential=False)))
        assert env_seq.now < env_rand.now

    def test_barrier_pays_flush_latency(self, env, run):
        dev = BlockDevice(env, SATA_SSD)
        run(dev.barrier(0))
        assert env.now == pytest.approx(SATA_SSD.barrier_latency)
        assert dev.stats.num_barriers == 1

    def test_barrier_waits_for_inflight_writes(self, env):
        dev = BlockDevice(env, SATA_SSD)
        done = {}

        def writer():
            yield from dev.write(10 * MB)
            done["write"] = env.now

        def syncer():
            yield from dev.barrier(0)
            done["barrier"] = env.now

        env.process(writer())
        env.process(syncer())
        env.run()
        assert done["barrier"] > done["write"]

    def test_stats_accumulate_and_delta(self, env, run):
        dev = BlockDevice(env, SATA_SSD)
        before = dev.stats.snapshot()
        run(dev.write(1000))
        run(dev.read(500))
        delta = dev.stats.delta(before)
        assert delta.bytes_written == 1000
        assert delta.bytes_read == 500
        assert delta.num_writes == 1
        assert delta.num_reads == 1

    def test_zero_byte_ops_are_free(self, env, run):
        dev = BlockDevice(env, SATA_SSD)
        run(dev.write(0))
        run(dev.read(0))
        assert env.now == 0.0
        assert dev.stats.num_writes == 0

    def test_device_profiles_ordering(self):
        # Barrier costs must order HDD > SATA > NVMe (the ablation axis).
        assert HARD_DISK.barrier_latency > SATA_SSD.barrier_latency
        assert SATA_SSD.barrier_latency > NVME_SSD.barrier_latency

    def test_metadata_op_cost(self, env, run):
        dev = BlockDevice(env, SATA_SSD)
        run(dev.metadata_op())
        assert env.now == pytest.approx(SATA_SSD.metadata_op_latency)
        assert dev.stats.num_metadata_ops == 1


class TestPageCache:
    def test_insert_and_hit(self):
        cache = PageCache(10 * PAGE_SIZE)
        cache.insert(1, 0)
        assert cache.contains(1, 0)
        assert cache.hits == 1

    def test_miss_recorded(self):
        cache = PageCache(10 * PAGE_SIZE)
        assert not cache.contains(1, 0)
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = PageCache(2 * PAGE_SIZE)
        cache.insert(1, 0)
        cache.insert(1, 1)
        cache.insert(1, 2)  # evicts (1, 0)
        assert not cache.contains(1, 0)
        assert cache.contains(1, 1)
        assert cache.contains(1, 2)
        assert cache.evictions == 1

    def test_touch_promotes(self):
        cache = PageCache(2 * PAGE_SIZE)
        cache.insert(1, 0)
        cache.insert(1, 1)
        assert cache.contains(1, 0)   # promote 0
        cache.insert(1, 2)            # evicts 1, not 0
        assert cache.contains(1, 0)
        assert not cache.contains(1, 1)

    def test_invalidate_file(self):
        cache = PageCache(10 * PAGE_SIZE)
        cache.insert(1, 0)
        cache.insert(2, 0)
        cache.invalidate_file(1)
        assert not cache.contains(1, 0)
        assert cache.contains(2, 0)

    def test_invalidate_range(self):
        cache = PageCache(10 * PAGE_SIZE)
        for page in range(5):
            cache.insert(1, page)
        cache.invalidate_range(1, 1, 3)
        assert cache.contains(1, 0)
        assert not cache.contains(1, 2)
        assert cache.contains(1, 4)

    def test_zero_capacity_never_caches(self):
        cache = PageCache(0)
        cache.insert(1, 0)
        assert not cache.contains(1, 0)


class TestSimFS:
    def test_create_write_read_roundtrip(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"hello world")
            data = yield from handle.read(0, 11)
            return data

        assert run(scenario()) == b"hello world"

    def test_open_missing_file_raises(self, env, fs, run):
        def scenario():
            yield from fs.open("missing")

        with pytest.raises(FileSystemError):
            run(scenario())

    def test_read_past_eof_truncates(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"abc")
            return (yield from handle.read(1, 100))

        assert run(scenario()) == b"bc"

    def test_write_at_extends(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.write_at(4, b"tail")
            return (yield from handle.read(0, 8))

        assert run(scenario()) == b"\x00\x00\x00\x00tail"

    def test_append_returns_offset(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            first = handle.append(b"aaaa")
            second = handle.append(b"bb")
            return first, second, handle.size

        assert run(scenario()) == (0, 4, 6)

    def test_fsync_counts_and_costs(self, env, fs, device, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"x" * MB)
            t0 = env.now
            yield from handle.fsync()
            return env.now - t0

        elapsed = run(scenario())
        assert fs.stats.num_fsync == 1
        assert fs.stats.num_barrier_calls == 1
        assert elapsed >= SATA_SSD.barrier_latency
        assert device.stats.bytes_written >= MB

    def test_fsync_only_flushes_dirty_pages(self, env, fs, device, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"x" * MB)
            yield from handle.fsync()
            written_after_first = device.stats.bytes_written
            yield from handle.fsync()  # nothing dirty now
            return written_after_first, device.stats.bytes_written

        first, second = run(scenario())
        assert second == first

    def test_rename_replaces(self, env, fs, run):
        def scenario():
            a = yield from fs.create("a")
            a.append(b"A")
            b = yield from fs.create("b")
            b.append(b"B")
            yield from fs.rename("a", "b")
            handle = yield from fs.open("b")
            return (yield from handle.read(0, 1)), fs.exists("a")

        data, a_exists = run(scenario())
        assert data == b"A"
        assert not a_exists

    def test_unlink_keeps_open_handles_valid(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"data")
            yield from fs.unlink("f")
            return (yield from handle.read(0, 4)), fs.exists("f")

        data, exists = run(scenario())
        assert data == b"data"
        assert not exists

    def test_listdir_prefix(self, env, fs, run):
        def scenario():
            yield from fs.create("db/1.ldb")
            yield from fs.create("db/2.ldb")
            yield from fs.create("other/x")
            return fs.listdir("db/")

        assert run(scenario()) == ["db/1.ldb", "db/2.ldb"]

    def test_punch_hole_zeroes_and_reclaims(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"x" * (4 * PAGE_SIZE))
            yield from handle.fsync()
            before = fs.total_allocated_bytes()
            handle.punch_hole(PAGE_SIZE, 2 * PAGE_SIZE)
            after = fs.total_allocated_bytes()
            data = yield from handle.read(PAGE_SIZE, PAGE_SIZE)
            intact = yield from handle.read(0, PAGE_SIZE)
            return before, after, data, intact

        before, after, hole, intact = run(scenario())
        assert after == before - 2 * PAGE_SIZE
        assert hole == b"\x00" * PAGE_SIZE
        assert intact == b"x" * PAGE_SIZE

    def test_punch_hole_issues_no_barrier(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"x" * (4 * PAGE_SIZE))
            yield from handle.fsync()
            barriers = fs.stats.num_barrier_calls
            handle.punch_hole(0, 2 * PAGE_SIZE)
            return barriers

        barriers_before = run(scenario())
        assert fs.stats.num_barrier_calls == barriers_before
        assert fs.stats.num_hole_punches == 1

    def test_punch_hole_partial_pages_ignored(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"x" * (2 * PAGE_SIZE))
            handle.punch_hole(10, 100)  # covers no full page
            return (yield from handle.read(0, 2 * PAGE_SIZE))

        assert run(scenario()) == b"x" * (2 * PAGE_SIZE)

    def test_adjacent_partial_punches_free_the_shared_page(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"x" * (4 * PAGE_SIZE))
            yield from handle.fsync()
            before = fs.total_allocated_bytes()
            # Two misaligned punches that jointly cover pages 0..2: each
            # call leaves page 1 partially covered, but the union spans it.
            handle.punch_hole(0, PAGE_SIZE + PAGE_SIZE // 2)
            handle.punch_hole(PAGE_SIZE + PAGE_SIZE // 2,
                              3 * PAGE_SIZE - (PAGE_SIZE + PAGE_SIZE // 2))
            after = fs.total_allocated_bytes()
            return before, after

        before, after = run(scenario())
        assert after == before - 3 * PAGE_SIZE

    def test_punch_then_rewrite_to_former_capacity(self, env, fs, run):
        """Hole-punched ranges are credited back to free_bytes: after
        punching a file away in misaligned pieces, writing until the
        former capacity succeeds without DiskFullError."""

        def scenario():
            fs.set_capacity(8 * PAGE_SIZE)
            handle = yield from fs.create("f")
            handle.append(b"x" * (8 * PAGE_SIZE))
            yield from handle.fsync()
            assert fs.free_bytes() == 0
            # Punch the whole file as misaligned halves; every page's
            # coverage completes across two calls.
            half = PAGE_SIZE // 2
            handle.punch_hole(0, half)
            for start in range(half, 8 * PAGE_SIZE - half + 1, PAGE_SIZE):
                handle.punch_hole(start, PAGE_SIZE)
            handle.punch_hole(8 * PAGE_SIZE - half, half)
            assert fs.free_bytes() == 8 * PAGE_SIZE
            other = yield from fs.create("g")
            other.append(b"y" * (8 * PAGE_SIZE))  # must not raise
            return fs.free_bytes()

        assert run(scenario()) == 0

    def test_cold_read_hits_device(self, env, run):
        device = BlockDevice(env, SATA_SSD)
        fs = SimFS(env, device, PageCache(2 * PAGE_SIZE))

        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"y" * (64 * PAGE_SIZE))  # evicts its own pages
            yield from handle.fsync()
            reads_before = device.stats.num_reads
            yield from handle.read(0, PAGE_SIZE)
            return reads_before, device.stats.num_reads

        before, after = run(scenario())
        assert after > before

    def test_warm_read_skips_device(self, env, fs, device, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"y" * PAGE_SIZE)
            reads_before = device.stats.num_reads
            yield from handle.read(0, PAGE_SIZE)
            return reads_before, device.stats.num_reads

        before, after = run(scenario())
        assert after == before


class TestCrashSemantics:
    def test_synced_data_survives_crash(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"precious" * 1000)
            yield from handle.fsync()
            fs.crash(survive_probability=0.0)
            fresh = yield from fs.open("f")
            return (yield from fresh.read(0, 8))

        assert run(scenario()) == b"precious"

    def test_unsynced_data_lost_in_worst_case(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"ephemeral" * 1000)
            fs.crash(survive_probability=0.0)
            fresh = yield from fs.open("f")
            return (yield from fresh.read(0, 9))

        assert run(scenario()) == b"\x00" * 9

    def test_unsynced_data_may_survive_in_best_case(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"lucky-data")
            fs.crash(survive_probability=1.0)
            fresh = yield from fs.open("f")
            return (yield from fresh.read(0, 10))

        assert run(scenario()) == b"lucky-data"

    def test_crash_reverts_to_preimage_not_empty(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"A" * PAGE_SIZE)
            yield from handle.fsync()
            handle.write_at(0, b"B" * PAGE_SIZE)
            fs.crash(survive_probability=0.0)
            fresh = yield from fs.open("f")
            return (yield from fresh.read(0, PAGE_SIZE))

        assert run(scenario()) == b"A" * PAGE_SIZE

    def test_random_crash_is_page_granular(self, env, fs, run):
        """Each unsynced dirty page independently survives or reverts —
        a surviving later page with a lost earlier page is exactly the
        no-write-ordering hazard of §2.4."""
        rng = random.Random(123)

        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"Z" * (32 * PAGE_SIZE))
            fs.crash(rng=rng, survive_probability=0.5)
            fresh = yield from fs.open("f")
            return (yield from fresh.read(0, 32 * PAGE_SIZE))

        data = run(scenario())
        pages = [data[i * PAGE_SIZE:(i + 1) * PAGE_SIZE] for i in range(32)]
        survived = [page == b"Z" * PAGE_SIZE for page in pages]
        zeroed = [page == b"\x00" * PAGE_SIZE for page in pages]
        assert all(s or z for s, z in zip(survived, zeroed))
        assert any(survived) and any(zeroed)  # a mixed outcome

    def test_crash_drops_page_cache(self, env, fs, run):
        def scenario():
            handle = yield from fs.create("f")
            handle.append(b"w" * PAGE_SIZE)
            yield from handle.fsync()
            fs.crash(survive_probability=1.0)
            return len(fs.page_cache)

        assert run(scenario()) == 0
