"""Serving layer tests: admission control, typed outcomes, open-loop
load generation, determinism, simcheck/lockdep cleanliness."""

from pathlib import Path

import pytest

from repro.analysis.simcheck import check_paths
from repro.bench.metrics import LatencyRecorder
from repro.bench.report import unified_snapshot
from repro.lsm import LSMEngine, Options
from repro.sim import Environment, Kernel
from repro.storage import BlockDevice, DiskFullError, PageCache, SimFS
from repro.svc import (
    POLICY_BLOCK,
    POLICY_REJECT,
    BurstyArrivals,
    PoissonArrivals,
    OpenLoopClient,
    Request,
    Server,
    STATUS_OK,
    STATUS_READ_ONLY,
    STATUS_REJECTED,
    run_open_loop,
)
from repro.ycsb.client import run_phase
from repro.ycsb.workload import WORKLOADS

KB = 1 << 10
MB = 1 << 20

SVC_DIR = str(Path(__file__).resolve().parent.parent / "src" / "repro" / "svc")


def serving_options(**overrides):
    base = dict(memtable_size=2 * MB, sstable_size=512 * KB,
                level1_max_bytes=2 * MB, wal_sync=True)
    base.update(overrides)
    return Options(**base)


def fresh_stack(options=None, env=None):
    env = env or Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    db = LSMEngine.open_sync(env, fs, options or serving_options(), "db")
    return env, fs, db


def submit_and_wait(env, server, requests):
    """Submit all requests in one instant; return outcomes in order."""
    outcomes = []

    def driver():
        pending = []
        for request in requests:
            done = yield from server.submit(request)
            pending.append(done)
        got = yield env.all_of(pending)
        outcomes.extend(got)

    env.run_until(env.process(driver(), name="test-driver"))
    return outcomes


class TestServerBasics:
    def test_all_operation_kinds_execute(self):
        env, _fs, db = fresh_stack()
        db.put_sync(b"existing", b"old")
        server = Server(env, db, num_workers=2, queue_depth=16)
        outcomes = submit_and_wait(env, server, [
            Request("insert", b"alpha", b"1"),
            Request("read", b"existing"),
            Request("update", b"existing", b"new"),
            Request("rmw", b"alpha", b"2"),
            Request("delete", b"alpha"),
            Request("scan", b"", 8),
        ])
        server.close_sync()
        assert [o.status for o in outcomes] == [STATUS_OK] * 6
        assert outcomes[1].value == b"old"
        assert db.get_sync(b"existing") == b"new"
        assert db.get_sync(b"alpha") is None
        assert server.stats.ok == 6

    def test_concurrent_server_writes_group_commit(self):
        env, _fs, db = fresh_stack()
        server = Server(env, db, num_workers=8, queue_depth=32)
        outcomes = submit_and_wait(env, server, [
            Request("insert", b"k%02d" % i, b"v" * 64) for i in range(8)])
        server.close_sync()
        assert all(o.ok for o in outcomes)
        assert db.stats.barriers_saved > 0

    def test_queue_full_rejects_with_typed_outcome(self):
        env, _fs, db = fresh_stack()
        server = Server(env, db, num_workers=1, queue_depth=2,
                        policy=POLICY_REJECT)
        outcomes = submit_and_wait(env, server, [
            Request("insert", b"q%02d" % i, b"v") for i in range(12)])
        server.close_sync()
        statuses = [o.status for o in outcomes]
        assert statuses.count(STATUS_REJECTED) > 0
        # Everything submitted in one instant: the queue admits exactly
        # queue_depth requests before the worker gets a turn.
        assert statuses.count(STATUS_OK) == 2
        rejected = next(o for o in outcomes if o.status == STATUS_REJECTED)
        assert "queue full" in rejected.error
        assert rejected.value is None
        assert server.stats.rejected == statuses.count(STATUS_REJECTED)

    def test_block_policy_backpressures_instead_of_shedding(self):
        env, _fs, db = fresh_stack()
        server = Server(env, db, num_workers=1, queue_depth=2,
                        policy=POLICY_BLOCK)
        outcomes = submit_and_wait(env, server, [
            Request("insert", b"b%02d" % i, b"v") for i in range(12)])
        server.close_sync()
        assert [o.status for o in outcomes] == [STATUS_OK] * 12
        assert server.stats.rejected == 0
        assert server.stats.peak_queue_depth <= 2

    def test_read_only_store_fails_writes_fast_serves_reads(self):
        env, _fs, db = fresh_stack()
        db.put_sync(b"kept", b"value")
        db.health.report("flush", DiskFullError("no space left"))
        assert db.health.read_only
        assert Server(env, db).admission_state() == "read_only"
        server = Server(env, db, num_workers=2, queue_depth=8)
        outcomes = submit_and_wait(env, server, [
            Request("insert", b"new", b"v"),
            Request("read", b"kept"),
            Request("delete", b"kept"),
        ])
        server.close_sync()
        assert outcomes[0].status == STATUS_READ_ONLY
        assert "read-only" in outcomes[0].error
        assert outcomes[1].status == STATUS_OK
        assert outcomes[1].value == b"value"
        assert outcomes[2].status == STATUS_READ_ONLY
        assert server.stats.read_only == 2

    def test_closed_server_rejects(self):
        env, _fs, db = fresh_stack()
        server = Server(env, db, num_workers=1, queue_depth=4)
        server.close_sync()
        outcomes = submit_and_wait(env, server, [Request("read", b"x")])
        assert outcomes[0].status == STATUS_REJECTED
        assert "closed" in outcomes[0].error

    def test_constructor_validation(self):
        env, _fs, db = fresh_stack()
        with pytest.raises(ValueError):
            Server(env, db, num_workers=0)
        with pytest.raises(ValueError):
            Server(env, db, queue_depth=0)
        with pytest.raises(ValueError):
            Server(env, db, policy="drop-everything")


class TestShutdownWithParkedSubmitters:
    """Server stop while POLICY_BLOCK submitters are parked on the
    space condition: every one must resolve typed, none may hang, and
    no sim process may leak on the condition."""

    def _parked_burst(self, policy_stop):
        """Drive 8 blocking submitters at a 1-slot queue, then stop.

        ``policy_stop`` is the server generator method used to stop
        (``Server.abort`` or ``Server.close``).  Returns the outcomes
        dict and the server.
        """
        env, _fs, db = fresh_stack()
        server = Server(env, db, num_workers=1, queue_depth=1,
                        policy=POLICY_BLOCK)
        outcomes = {}

        def submitter(i):
            done = yield from server.submit(
                Request("insert", b"park%02d" % i, b"v" * 32))
            outcomes[i] = yield done

        for i in range(8):
            env.process(submitter(i), name=f"parked-{i}")

        def stopper():
            # A few microseconds in: the queue is full and most
            # submitters are parked on the space condition.
            yield env.timeout(2e-6)
            yield from policy_stop(server)

        env.run_until(env.process(stopper(), name="stopper"))
        env.run()
        return outcomes, server

    def test_abort_resolves_parked_submitters_typed(self):
        outcomes, server = self._parked_burst(Server.abort)
        assert sorted(outcomes) == list(range(8))
        statuses = [outcomes[i].status for i in range(8)]
        assert all(s in (STATUS_OK, STATUS_REJECTED) for s in statuses)
        # The burst outnumbers queue+worker, so parked submitters exist
        # at the abort and must come back typed-rejected, not hang.
        assert statuses.count(STATUS_REJECTED) >= 5
        for i in range(8):
            if outcomes[i].status == STATUS_REJECTED:
                assert "closed" in outcomes[i].error
        # No submitter is left parked on the space condition and the
        # accounting matches: every submission completed or was shed.
        assert server._space.waiting == 0
        assert server._work.waiting == 0
        stats = server.stats
        assert stats.completed + stats.rejected >= stats.submitted

    def test_close_drains_then_sweeps_parked_submitters(self):
        outcomes, server = self._parked_burst(Server.close)
        # Graceful close: drain admits the queued work, so parked
        # submitters take the freed slots and complete; anything still
        # parked at the final notify resolves typed-rejected.
        assert sorted(outcomes) == list(range(8))
        for i in range(8):
            assert outcomes[i].status in (STATUS_OK, STATUS_REJECTED)
            if outcomes[i].status == STATUS_REJECTED:
                assert "closed" in outcomes[i].error
        assert server._space.waiting == 0

    def test_abort_rejects_queued_requests_and_stops_workers(self):
        env, _fs, db = fresh_stack()
        server = Server(env, db, num_workers=1, queue_depth=8,
                        policy=POLICY_REJECT)
        outcomes = submit_and_wait(env, server, [
            Request("insert", b"q%02d" % i, b"v") for i in range(4)])
        assert all(o.ok for o in outcomes)
        server.abort_sync()
        # Post-abort submissions resolve immediately, typed.
        late = submit_and_wait(env, server, [Request("read", b"q00")])
        assert late[0].status == STATUS_REJECTED
        assert "closed" in late[0].error


class TestArrivalProcesses:
    def test_poisson_is_seeded_and_positive(self):
        import random
        a = PoissonArrivals(1000.0, random.Random(5))
        b = PoissonArrivals(1000.0, random.Random(5))
        draws_a = [a.next_interval() for _ in range(100)]
        draws_b = [b.next_interval() for _ in range(100)]
        assert draws_a == draws_b
        assert all(d > 0 for d in draws_a)
        assert abs(sum(draws_a) / 100 - 1e-3) < 5e-4

    def test_bursty_alternates_bursts_and_gaps(self):
        import random
        arrivals = BurstyArrivals(5000.0, random.Random(9),
                                  burst_seconds=0.01, idle_seconds=0.1)
        t, times = 0.0, []
        for _ in range(200):
            t += arrivals.next_interval()
            times.append(t)
        gaps = [b - a for a, b in zip(times, times[1:])]
        # Arrivals inside a burst are ~0.2 ms apart; crossing an idle
        # window inserts the full 100 ms gap.
        assert max(gaps) >= 0.1
        assert min(gaps) < 0.01
        # Deterministic under the same seed.
        again = BurstyArrivals(5000.0, random.Random(9),
                               burst_seconds=0.01, idle_seconds=0.1)
        t2, times2 = 0.0, []
        for _ in range(200):
            t2 += again.next_interval()
            times2.append(t2)
        assert times == times2

    def test_validation(self):
        import random
        with pytest.raises(ValueError):
            PoissonArrivals(0.0, random.Random(1))
        with pytest.raises(ValueError):
            BurstyArrivals(10.0, random.Random(1), burst_seconds=0.0)


class TestOpenLoopLatency:
    class FixedArrivals:
        def __init__(self, interval):
            self.interval = interval

        def next_interval(self):
            return self.interval

    def test_latency_is_measured_from_intended_start(self):
        # One slow worker, sub-service-time arrival period: an honest
        # open-loop measurement must show queueing delay accumulating
        # linearly, which a closed-loop client would hide entirely.
        env, _fs, db = fresh_stack()
        server = Server(env, db, num_workers=1, queue_depth=64,
                        policy=POLICY_BLOCK)
        operations = [("insert", b"co%02d" % i, b"v" * 64)
                      for i in range(20)]
        client = OpenLoopClient(env, server, operations,
                                self.FixedArrivals(1e-6), client_id=0)
        result = env.run_until(env.process(client.run()))
        server.close_sync()
        assert result.ok == 20
        # Completion order is submission order here, so the last
        # operation's latency is ~20 service times while its own
        # service time is 1: the backlog is charged to the tail.
        assert result.latency.max > 5 * result.latency.min
        assert result.latency.percentile(99.9) > result.latency.percentile(50)
        assert result.queue_delay.max > 0

    def test_outcome_latency_properties(self):
        env, _fs, db = fresh_stack()
        server = Server(env, db, num_workers=1, queue_depth=4)
        request = Request("insert", b"k", b"v", intended_start=0.0)
        outcomes = submit_and_wait(env, server, [request])
        server.close_sync()
        outcome = outcomes[0]
        assert outcome.latency == outcome.finished - request.intended_start
        assert outcome.queue_delay == outcome.started - request.intended_start


class TestRunOpenLoop:
    def _run(self, seed=7, arrival="poisson"):
        env, _fs, db = fresh_stack()
        for i in range(200):
            db.put_sync(b"seed%04d" % i, b"x" * 64)
        server = Server(env, db, num_workers=4, queue_depth=32)
        report = run_open_loop(env, server, WORKLOADS["a"], num_clients=2,
                               requests_per_client=60, rate=800.0,
                               record_count=200, value_size=64, seed=seed,
                               arrival=arrival)
        server.close_sync()
        return report, server, db

    def test_two_runs_identical(self):
        report1, _s1, _db1 = self._run()
        report2, _s2, _db2 = self._run()
        assert report1.summary_rows() == report2.summary_rows()
        assert report1.totals() == report2.totals()

    def test_report_shape(self):
        report, server, _db = self._run()
        totals = report.totals()
        assert totals["clients"] == 2
        assert totals["submitted"] == 120
        assert totals["ok"] > 0
        assert totals["p999"] >= totals["p99"] >= totals["p50"] > 0
        assert len(report.merged_latency) == totals["ok"]
        assert server.stats.submitted == 120

    def test_bursty_arrival_mode(self):
        report, _server, _db = self._run(arrival="bursty")
        assert report.totals()["submitted"] == 120

    def test_unknown_arrival_raises(self):
        env, _fs, db = fresh_stack()
        server = Server(env, db)
        with pytest.raises(ValueError):
            run_open_loop(env, server, WORKLOADS["a"], arrival="constant")


class TestWaitServiceDimensions:
    def test_ycsb_client_separates_stall_wait_from_service(self):
        # Tiny memtable + slow governor settings force write stalls, so
        # the wait dimension must show up non-empty.
        env, _fs, db = fresh_stack(Options(
            memtable_size=8 * KB, sstable_size=4 * KB,
            level1_max_bytes=16 * KB, wal_sync=True))
        recorder = env.run_until(env.process(run_phase(
            env, db, WORKLOADS["load_a"], num_ops=120, record_count=120,
            value_size=256, num_clients=2, seed=11)))
        primary = recorder.kinds()
        assert primary == ["insert"]
        aux = recorder.kinds(include_aux=True)
        assert "insert.wait" in aux and "insert.service" in aux
        assert recorder.count("insert") == 120
        assert recorder.count("insert.wait") == 120
        # Aux dimensions never pollute the kind-less aggregates.
        assert recorder.count(None) == 120
        assert len(recorder.samples(None)) == 120
        # wait + service == total, per-sample.
        totals = recorder.samples("insert")
        waits = recorder.samples("insert.wait")
        services = recorder.samples("insert.service")
        for total, wait, service in zip(totals, waits, services):
            assert total == pytest.approx(wait + service)
        assert sum(waits) > 0  # the stalls actually happened

    def test_recorder_aux_rule_is_pure_bookkeeping(self):
        recorder = LatencyRecorder()
        recorder.record("read", 1.0)
        recorder.record("read.wait", 0.25)
        assert recorder.kinds() == ["read"]
        assert recorder.kinds(include_aux=True) == ["read", "read.wait"]
        assert recorder.count(None) == 1
        assert recorder.samples(None) == [1.0]
        assert recorder.samples("read.wait") == [0.25]


class TestUnifiedSnapshotSections:
    class _Stack:
        def __init__(self, env, fs):
            self.env = env
            self.fs = fs
            self.device = fs.device

    def test_svc_and_latency_sections(self):
        env, fs, db = fresh_stack()
        server = Server(env, db, num_workers=2, queue_depth=8)
        submit_and_wait(env, server, [Request("insert", b"k", b"v")])
        server.close_sync()
        recorder = LatencyRecorder()
        recorder.record("insert", 2e-3)
        recorder.record("insert.wait", 5e-4)
        snap = unified_snapshot(self._Stack(env, fs), db=db, server=server,
                                recorder=recorder)
        assert snap["svc"]["completed"] == 1
        assert snap["svc"]["ok"] == 1
        assert snap["engine"]["group_commits"] == 1
        assert snap["latency"]["insert.count"] == 1
        assert snap["latency"]["insert.wait.mean"] == pytest.approx(5e-4)

    def test_sections_absent_without_server_or_recorder(self):
        env, fs, db = fresh_stack()
        snap = unified_snapshot(self._Stack(env, fs), db=db)
        assert "svc" not in snap and "latency" not in snap


class TestAnalysisCleanliness:
    def test_simcheck_clean_over_svc(self):
        assert check_paths([SVC_DIR]) == []

    def test_serving_path_is_lockdep_clean(self):
        env = Kernel(sanitize=True)
        _env, _fs, db = fresh_stack(env=env)
        server = Server(env, db, num_workers=4, queue_depth=16)
        submit_and_wait(env, server, [
            Request("insert", b"s%02d" % i, b"v" * 32) for i in range(12)])
        server.close_sync()
        assert db.stats.barriers_saved > 0  # groups actually formed
        assert env.sanitizer.reports == []
        env.sanitizer.check()

    def test_lockdep_catches_queue_lock_vs_mutex_inversion(self):
        # The engine's discipline is to never hold the writer-queue
        # lock across a db-mutex acquire (or vice versa).  Violating it
        # by hand must light up lockdep, proving the clean run above
        # actually exercises the detector.
        env = Kernel(sanitize=True)
        _env, _fs, db = fresh_stack(env=env)

        def qlock_then_mutex():
            yield db._write_queue_lock.acquire()
            yield db._mutex.acquire()
            db._mutex.release()
            db._write_queue_lock.release()

        def mutex_then_qlock():
            yield db._mutex.acquire()
            yield db._write_queue_lock.acquire()
            db._write_queue_lock.release()
            db._mutex.release()

        env.process(qlock_then_mutex())
        env.run()
        assert env.sanitizer.reports == []
        env.process(mutex_then_qlock())
        env.run()
        assert [r.kind for r in env.sanitizer.reports] == ["lock-cycle"]
