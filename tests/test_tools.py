"""Tests for the operator tools: dbbench, dump, repair."""

import json
import random

import pytest

from repro.core import BoLTEngine, bolt_options
from repro.engines import LevelDBEngine, leveldb_options
from repro.sim import Environment
from repro.storage import BlockDevice, PageCache, SimFS
from repro.tools import (
    describe_database,
    dump_manifest,
    dump_table,
    dump_wal,
    repair_database,
)
from repro.tools.dbbench import main as dbbench_main
from repro.tools.repair import scan_container_for_tables

SCALE = 1024


def fresh_stack():
    env = Environment()
    fs = SimFS(env, BlockDevice(env), PageCache(16 << 20))
    return env, fs


def load_db(engine_cls, options, n=1500, seed=5):
    env, fs = fresh_stack()
    db = engine_cls.open_sync(env, fs, options, "db")
    rng = random.Random(seed)
    model = {}

    def writer():
        for i in range(n):
            key = b"user%08d" % rng.randrange(800)
            value = b"v" * 64 + b"%d" % i
            model[key] = value
            yield from db.put(key, value)
        yield from db.flush_all()

    env.run_until(env.process(writer()))
    return env, fs, db, model


class TestDbBench:
    def test_full_run_produces_rows(self, capsys):
        rows = dbbench_main([
            "--engine", "bolt", "--num", "600", "--scale", "1024",
            "--benchmarks", "fillrandom,readrandom,readseq,compact,stats",
        ])
        names = [row["benchmark"] for row in rows]
        assert names == ["fillrandom", "readrandom", "readseq",
                         "compact", "stats"]
        fill = rows[0]
        assert fill["ops"] == 600
        assert fill["kops_per_s"] > 0
        stats = rows[-1]
        assert stats["fsync"] > 0
        out = capsys.readouterr().out
        assert "micros/op" in out

    def test_every_engine_runs(self):
        for engine in ("leveldb", "hyperleveldb", "rocksdb", "pebblesdb",
                       "hyperbolt"):
            rows = dbbench_main([
                "--engine", engine, "--num", "300", "--scale", "1024",
                "--benchmarks", "fillrandom,readrandom",
            ])
            assert rows[1]["ops"] == 300

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            dbbench_main(["--benchmarks", "flymetothemoon"])


class TestDump:
    def test_dump_manifest(self):
        env, fs, db, _model = load_db(LevelDBEngine, leveldb_options(SCALE))
        name = f"db/MANIFEST-{db.versions.manifest_file_number:06d}"
        lines = env.run_until(env.process(dump_manifest(fs, name)))
        assert lines
        assert any("add(L0" in line for line in lines)

    def test_dump_wal(self):
        env, fs, db, _model = load_db(LevelDBEngine, leveldb_options(SCALE))
        db.put_sync(b"fresh-key", b"fresh-value")
        wal_name = f"db/{db._wal_number:06d}.log"
        lines = env.run_until(env.process(dump_wal(fs, wal_name)))
        assert any(b"fresh-key" in line.encode("unicode_escape")
                   or "fresh-key" in line for line in lines)

    def test_dump_table(self):
        env, fs, db, _model = load_db(LevelDBEngine, leveldb_options(SCALE))
        meta = next(iter(db.versions.current.live_numbers().values()))
        summary = env.run_until(env.process(dump_table(
            fs, meta.container, meta.offset, meta.length,
            db.options, include_entries=True)))
        assert summary["num_entries"] == meta.num_entries
        assert len(summary["entries"]) == meta.num_entries

    def test_describe_database(self):
        env, fs, db, _model = load_db(BoLTEngine, bolt_options(SCALE))
        lines = env.run_until(env.process(describe_database(fs, "db",
                                                            db.options)))
        text = "\n".join(lines)
        assert "last_sequence" in text
        assert "L" in text

    def test_describe_missing_database(self, env, fs, run):
        lines = run(describe_database(fs, "nope"))
        assert any("no CURRENT" in line for line in lines)


class TestScanContainer:
    def test_finds_all_logical_tables(self):
        env, fs, db, _model = load_db(BoLTEngine, bolt_options(SCALE))
        live = list(db.versions.current.live_numbers().values())
        containers = {}
        for meta in live:
            containers.setdefault(meta.container, []).append(meta)
        container, metas = max(containers.items(), key=lambda kv: len(kv[1]))
        found = env.run_until(env.process(
            scan_container_for_tables(fs, container, db.options)))
        found_offsets = {base for base, _length, _r in found}
        for meta in metas:
            assert meta.offset in found_offsets

    def test_skips_corrupt_tables(self):
        env, fs, db, _model = load_db(LevelDBEngine, leveldb_options(SCALE))
        metas = list(db.versions.current.live_numbers().values())
        victim = metas[0]

        def corrupt():
            handle = yield from fs.open(victim.container)
            handle.write_at(victim.offset + 20, b"\xba\xad")
            return (yield from scan_container_for_tables(
                fs, victim.container, db.options))

        found = env.run_until(env.process(corrupt()))
        assert all(base != victim.offset for base, _l, _r in found)


class TestRepair:
    def _wreck_and_repair(self, engine_cls, options, n=1200):
        env, fs, db, model = load_db(engine_cls, options, n=n)
        db.kill()
        # Destroy the metadata: the MANIFEST chain and CURRENT.
        def destroy():
            for name in list(fs.listdir("db/")):
                if "MANIFEST" in name or name.endswith("CURRENT"):
                    yield from fs.unlink(name)

        env.run_until(env.process(destroy()))
        report = env.run_until(env.process(
            repair_database(env, fs, options, "db")))
        db2 = engine_cls.open_sync(env, fs, options, "db")
        return env, db2, model, report

    def test_repair_leveldb(self):
        env, db, model, report = self._wreck_and_repair(
            LevelDBEngine, leveldb_options(SCALE))
        assert report.tables_recovered > 0

        def verify():
            for key, value in model.items():
                got = yield from db.get(key)
                assert got == value, key

        env.run_until(env.process(verify()))

    def test_repair_bolt_logical_tables(self):
        """The hard case: logical SSTable boundaries only existed in the
        destroyed MANIFEST; the footer scan must rediscover them."""
        env, db, model, report = self._wreck_and_repair(
            BoLTEngine, bolt_options(SCALE))
        assert report.tables_recovered > 0

        def verify():
            for key, value in model.items():
                got = yield from db.get(key)
                assert got == value, key

        env.run_until(env.process(verify()))

    def test_repair_salvages_wal(self):
        env, fs, db, model = load_db(LevelDBEngine, leveldb_options(SCALE))
        db.put_sync(b"wal-only-key", b"wal-only-value")
        # WAL contents are in the page cache; sync so they survive.
        env.run_until(env.process(db._wal_handle.fsync()))
        db.kill()

        def destroy():
            for name in list(fs.listdir("db/")):
                if "MANIFEST" in name or name.endswith("CURRENT"):
                    yield from fs.unlink(name)

        env.run_until(env.process(destroy()))
        report = env.run_until(env.process(
            repair_database(env, fs, leveldb_options(SCALE), "db")))
        assert report.wal_records_salvaged > 0
        db2 = LevelDBEngine.open_sync(env, fs, leveldb_options(SCALE), "db")
        assert db2.get_sync(b"wal-only-key") == b"wal-only-value"

    def test_repair_honours_quarantine_intent(self):
        """A table the scrubber quarantined must stay out of the rebuilt
        tree even when its bytes verify during the scavenge (the mark
        models intermittent media faults the CRC pass cannot see)."""
        env, fs, db, _model = load_db(LevelDBEngine, leveldb_options(SCALE))
        live = list(db.versions.current.live_numbers().values())
        victim = live[0]
        db._quarantine(victim, "operator: intermittent read failures")

        def settle():
            yield env.timeout(0.05)  # let the quarantine record commit

        env.run_until(env.process(settle()))
        db.close_sync()
        report = env.run_until(env.process(
            repair_database(env, fs, leveldb_options(SCALE), "db")))
        assert report.tables_quarantined == 1
        db2 = LevelDBEngine.open_sync(env, fs, leveldb_options(SCALE), "db")
        rebuilt = db2.versions.current.live_numbers().values()
        assert all((m.container, m.offset)
                   != (victim.container, victim.offset) for m in rebuilt)
        db2.close_sync()

    def test_repair_preserves_version_order(self):
        """Overwrites across many tables: repair's recency renumbering
        must keep the newest value on top."""
        env, fs = fresh_stack()
        options = leveldb_options(SCALE)
        db = LevelDBEngine.open_sync(env, fs, options, "db")
        for generation in range(5):
            for i in range(200):
                db.put_sync(b"key%04d" % i, b"gen-%d" % generation)
            env.run_until(env.process(db.flush_all()))
        db.kill()

        def destroy():
            for name in list(fs.listdir("db/")):
                if "MANIFEST" in name or name.endswith("CURRENT"):
                    yield from fs.unlink(name)

        env.run_until(env.process(destroy()))
        env.run_until(env.process(repair_database(env, fs, options, "db")))
        db2 = LevelDBEngine.open_sync(env, fs, options, "db")
        for i in range(0, 200, 17):
            assert db2.get_sync(b"key%04d" % i) == b"gen-4"


class TestPerfBench:
    """repro.tools.perfbench: wall-clock harness with deterministic digests."""

    def test_benchmarks_registered(self):
        from repro.tools.perfbench import BENCHMARKS
        assert set(BENCHMARKS) == {"kernel", "codec", "skiplist",
                                   "histogram", "objstore_cache", "ycsb_a"}

    def test_fingerprints_stable_across_runs(self):
        """Each benchmark's fingerprint is a pure function of the code."""
        from repro.tools.perfbench import BENCHMARKS
        for name in ("kernel", "codec", "skiplist", "histogram"):
            _, first = BENCHMARKS[name]()
            _, second = BENCHMARKS[name]()
            assert first == second, name

    def test_json_and_floor_gate(self, tmp_path, capsys):
        from repro.tools.perfbench import main as perfbench_main
        path = tmp_path / "BENCH_perf.json"
        subset = "codec,histogram"
        perfbench_main(["--benchmarks", subset, "--repeat", "1",
                        "--json", str(path)])
        payload = json.loads(path.read_text())
        assert payload["schema"] == "perfbench-v1"
        assert payload["calibration_seconds"] > 0
        assert set(payload["benchmarks"]) == {"codec", "histogram"}
        for row in payload["benchmarks"].values():
            assert row["seconds"] >= 0
            assert len(row["fingerprint"]) == 64
        # The gate passes against a baseline this same host just wrote.
        perfbench_main(["--benchmarks", subset, "--repeat", "1",
                        "--assert-floor", str(path), "--tolerance", "5.0"])
        out = capsys.readouterr().out
        assert "perfbench: floor + fingerprints ok" in out

    def test_floor_gate_fails_on_fingerprint_drift(self, tmp_path, capsys):
        from repro.tools.perfbench import main as perfbench_main
        path = tmp_path / "BENCH_perf.json"
        perfbench_main(["--benchmarks", "histogram", "--repeat", "1",
                        "--json", str(path)])
        payload = json.loads(path.read_text())
        payload["benchmarks"]["histogram"]["fingerprint"] = "0" * 64
        path.write_text(json.dumps(payload))
        with pytest.raises(SystemExit):
            perfbench_main(["--benchmarks", "histogram", "--repeat", "1",
                            "--assert-floor", str(path)])
        assert "results changed" in capsys.readouterr().out

    def test_digest_mode_emits_only_fingerprints(self, capsys):
        from repro.tools.perfbench import main as perfbench_main
        perfbench_main(["--benchmarks", "histogram", "--digest"])
        emitted = json.loads(capsys.readouterr().out)
        assert set(emitted) == {"histogram"}
        assert len(emitted["histogram"]) == 64
