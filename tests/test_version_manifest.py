"""Unit tests for Version bookkeeping and MANIFEST machinery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lsm import FileMetaData, Options, Version, VersionEdit, VersionSet


def meta(number, smallest, largest, length=1000, container=None, offset=0):
    return FileMetaData(number=number, container=container or f"{number}.ldb",
                        offset=offset, length=length,
                        smallest=smallest, largest=largest)


class TestFileMetaData:
    def test_overlap_cases(self):
        m = meta(1, b"d", b"m")
        assert m.overlaps(b"a", b"e")
        assert m.overlaps(b"f", b"g")
        assert m.overlaps(b"m", b"z")
        assert not m.overlaps(b"a", b"c")
        assert not m.overlaps(b"n", b"z")

    def test_open_ranges(self):
        m = meta(1, b"d", b"m")
        assert m.overlaps(None, b"e")
        assert m.overlaps(b"e", None)
        assert m.overlaps(None, None)
        assert not m.overlaps(None, b"c")
        assert not m.overlaps(b"n", None)


class TestVersion:
    def test_level0_keeps_insertion_by_number(self):
        v = Version(3)
        v.add_file(0, meta(5, b"a", b"z"))
        v.add_file(0, meta(3, b"a", b"z"))
        assert [f.number for f in v.files[0]] == [3, 5]

    def test_deeper_levels_sorted_by_smallest(self):
        v = Version(3)
        v.add_file(1, meta(1, b"m", b"p"))
        v.add_file(1, meta(2, b"a", b"c"))
        v.add_file(1, meta(3, b"e", b"g"))
        assert [f.smallest for f in v.files[1]] == [b"a", b"e", b"m"]

    def test_tables_for_key_level0_newest_first(self):
        v = Version(3)
        v.add_file(0, meta(1, b"a", b"m"))
        v.add_file(0, meta(2, b"c", b"z"))
        v.add_file(0, meta(3, b"x", b"z"))
        hits = v.tables_for_key(0, b"d")
        assert [f.number for f in hits] == [2, 1]

    def test_tables_for_key_binary_search(self):
        v = Version(3)
        v.add_file(1, meta(1, b"a", b"c"))
        v.add_file(1, meta(2, b"e", b"g"))
        v.add_file(1, meta(3, b"i", b"k"))
        assert [f.number for f in v.tables_for_key(1, b"f")] == [2]
        assert v.tables_for_key(1, b"d") == []
        assert v.tables_for_key(1, b"z") == []

    def test_overlapping_files_simple(self):
        v = Version(3)
        v.add_file(1, meta(1, b"a", b"c"))
        v.add_file(1, meta(2, b"e", b"g"))
        v.add_file(1, meta(3, b"i", b"k"))
        hits = v.overlapping_files(1, b"b", b"f")
        assert [f.number for f in hits] == [1, 2]

    def test_level0_transitive_expansion(self):
        """§2.1: one L0 table can transitively pull in all the others."""
        v = Version(3)
        v.add_file(0, meta(1, b"a", b"e"))
        v.add_file(0, meta(2, b"d", b"j"))
        v.add_file(0, meta(3, b"i", b"p"))
        v.add_file(0, meta(4, b"x", b"z"))
        hits = v.overlapping_files(0, b"a", b"b")
        assert sorted(f.number for f in hits) == [1, 2, 3]

    def test_remove_file(self):
        v = Version(3)
        v.add_file(1, meta(1, b"a", b"c"))
        assert v.remove_file(1, 1)
        assert not v.remove_file(1, 1)
        assert v.files[1] == []

    def test_byte_and_count_accounting(self):
        v = Version(3)
        v.add_file(1, meta(1, b"a", b"c", length=100))
        v.add_file(1, meta(2, b"e", b"g", length=250))
        assert v.level_bytes(1) == 350
        assert v.num_files(1) == 2
        assert v.total_bytes() == 350
        assert v.deepest_nonempty_level() == 1

    def test_invariant_checker_catches_overlap(self):
        v = Version(3)
        v.add_file(1, meta(1, b"a", b"f"))
        v.add_file(1, meta(2, b"d", b"k"))
        with pytest.raises(AssertionError):
            v.check_invariants()

    def test_clone_is_independent(self):
        v = Version(3)
        v.add_file(1, meta(1, b"a", b"c"))
        clone = v.clone()
        clone.remove_file(1, 1)
        assert v.num_files(1) == 1
        assert clone.num_files(1) == 0


class TestVersionEdit:
    def test_roundtrip_full(self):
        edit = VersionEdit()
        edit.log_number = 7
        edit.next_file_number = 42
        edit.last_sequence = 12345
        edit.set_compact_pointer(2, b"pointer-key")
        edit.delete_file(1, 9)
        edit.add_file(2, meta(10, b"aa", b"zz", length=555,
                              container="c.cf", offset=4096))
        edit.add_guard(3, b"guard-key")
        decoded = VersionEdit.decode(edit.encode())
        assert decoded.log_number == 7
        assert decoded.next_file_number == 42
        assert decoded.last_sequence == 12345
        assert decoded.compact_pointers == [(2, b"pointer-key")]
        assert decoded.deleted_files == [(1, 9)]
        level, m = decoded.new_files[0]
        assert level == 2 and m.number == 10
        assert m.container == "c.cf" and m.offset == 4096 and m.length == 555
        assert m.smallest == b"aa" and m.largest == b"zz"
        assert decoded.new_guards == [(3, b"guard-key")]

    def test_empty_edit(self):
        decoded = VersionEdit.decode(VersionEdit().encode())
        assert decoded.new_files == [] and decoded.deleted_files == []

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 6), st.integers(1, 10 ** 6),
                              st.binary(min_size=1, max_size=8),
                              st.binary(min_size=1, max_size=8)),
                    max_size=20))
    def test_new_files_roundtrip_property(self, files):
        edit = VersionEdit()
        for level, number, k1, k2 in files:
            lo, hi = min(k1, k2), max(k1, k2)
            edit.add_file(level, meta(number, lo, hi))
        decoded = VersionEdit.decode(edit.encode())
        assert len(decoded.new_files) == len(files)
        for (level, number, k1, k2), (dl, dm) in zip(files, decoded.new_files):
            assert dl == level and dm.number == number


class TestVersionSet:
    def _vs(self, env, fs, run):
        options = Options()
        vs = VersionSet(env, fs, options, "db")
        run(vs.create_new())
        return vs

    def test_create_writes_current_and_manifest(self, env, fs, run):
        self._vs(env, fs, run)
        assert fs.exists("db/CURRENT")
        assert fs.exists("db/MANIFEST-000001")

    def test_log_and_apply_fsyncs_manifest(self, env, fs, run):
        vs = self._vs(env, fs, run)
        barriers = fs.stats.num_barrier_calls
        edit = VersionEdit()
        edit.add_file(0, meta(10, b"a", b"z"))
        run(vs.log_and_apply(edit))
        assert fs.stats.num_barrier_calls == barriers + 1
        assert vs.current.num_files(0) == 1

    def test_recover_rebuilds_state(self, env, fs, run):
        vs = self._vs(env, fs, run)
        edit = VersionEdit()
        edit.add_file(1, meta(10, b"a", b"m", length=123))
        edit.add_file(1, meta(11, b"n", b"z", length=456))
        run(vs.log_and_apply(edit))
        edit2 = VersionEdit()
        edit2.delete_file(1, 10)
        vs.last_sequence = 999
        run(vs.log_and_apply(edit2))

        vs2 = VersionSet(env, fs, Options(), "db")
        run(vs2.recover())
        assert [f.number for f in vs2.current.files[1]] == [11]
        assert vs2.last_sequence == 999
        assert vs2.next_file_number >= 12

    def test_recover_rolls_manifest(self, env, fs, run):
        vs = self._vs(env, fs, run)
        old_manifest = f"db/MANIFEST-{vs.manifest_file_number:06d}"
        vs2 = VersionSet(env, fs, Options(), "db")
        run(vs2.recover())
        assert vs2.manifest_file_number != vs.manifest_file_number
        assert not fs.exists(old_manifest)
        assert fs.exists(f"db/MANIFEST-{vs2.manifest_file_number:06d}")

    def test_unsynced_edit_lost_after_crash(self, env, fs, run):
        """The MANIFEST is the commit mark: an edit whose fsync never
        completed must vanish on recovery (§2.4)."""
        vs = self._vs(env, fs, run)
        edit = VersionEdit()
        edit.add_file(0, meta(10, b"a", b"z"))
        # Append the record without the barrier (simulate pre-fsync crash).
        edit.next_file_number = vs.next_file_number
        edit.last_sequence = vs.last_sequence
        edit.log_number = vs.log_number
        vs._manifest_writer.append(edit.encode())
        fs.crash(survive_probability=0.0)
        vs2 = VersionSet(env, fs, Options(), "db")
        run(vs2.recover())
        assert vs2.current.num_files(0) == 0

    def test_synced_edit_survives_crash(self, env, fs, run):
        vs = self._vs(env, fs, run)
        edit = VersionEdit()
        edit.add_file(0, meta(10, b"a", b"z"))
        run(vs.log_and_apply(edit))
        fs.crash(survive_probability=0.0)
        vs2 = VersionSet(env, fs, Options(), "db")
        run(vs2.recover())
        assert vs2.current.num_files(0) == 1

    def test_level_scores(self, env, fs, run):
        vs = self._vs(env, fs, run)
        for i in range(8):
            edit = VersionEdit()
            edit.add_file(0, meta(100 + i, b"a", b"z"))
            run(vs.log_and_apply(edit))
        assert vs.level_score(0) == pytest.approx(
            8 / vs.options.l0_compaction_trigger)
        level, score = vs.pick_compaction_level()
        assert level == 0 and score > 1.0

    def test_l0_unit_count_by_container(self, env, fs, run):
        options = Options(use_compaction_file=True)
        vs = VersionSet(env, fs, options, "db")
        run(vs.create_new())
        edit = VersionEdit()
        for i in range(6):
            edit.add_file(0, meta(10 + i, b"a", b"z",
                                  container="db/000009.cf", offset=i * 100))
        run(vs.log_and_apply(edit))
        assert vs.current.num_files(0) == 6
        assert vs.l0_unit_count() == 1  # one flush container

    def test_file_numbers_monotonic(self, env, fs, run):
        vs = self._vs(env, fs, run)
        numbers = [vs.new_file_number() for _ in range(5)]
        assert numbers == sorted(numbers)
        assert len(set(numbers)) == 5
