"""Unit tests for the WAL, write batches, and the cache hierarchy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lsm import LogWriter, Options, WriteBatch, read_log_records
from repro.lsm.cache import BlockCache, LRUCache, TableCache
from repro.lsm.codec import VALUE_TYPE_DELETION, VALUE_TYPE_VALUE
from repro.lsm.sstable import SSTableBuilder


class TestWriteBatch:
    def test_roundtrip(self):
        batch = WriteBatch()
        batch.put(b"a", b"1")
        batch.delete(b"b")
        batch.put(b"c", b"3")
        first_seq, decoded = WriteBatch.decode(batch.encode(77))
        assert first_seq == 77
        assert decoded.ops == [(VALUE_TYPE_VALUE, b"a", b"1"),
                               (VALUE_TYPE_DELETION, b"b", b""),
                               (VALUE_TYPE_VALUE, b"c", b"3")]

    def test_len_and_size(self):
        batch = WriteBatch()
        batch.put(b"key", b"value")
        assert len(batch) == 1
        assert batch.byte_size >= 8

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.booleans(),
                              st.binary(min_size=1, max_size=32),
                              st.binary(max_size=64)), max_size=50))
    def test_roundtrip_property(self, ops):
        batch = WriteBatch()
        for is_put, key, value in ops:
            if is_put:
                batch.put(key, value)
            else:
                batch.delete(key)
        _seq, decoded = WriteBatch.decode(batch.encode(1))
        assert len(decoded.ops) == len(ops)
        for (is_put, key, value), (vt, dk, dv) in zip(ops, decoded.ops):
            assert dk == key
            if is_put:
                assert vt == VALUE_TYPE_VALUE and dv == value
            else:
                assert vt == VALUE_TYPE_DELETION


class TestLogWriterReader:
    def test_records_roundtrip(self, fs, run):
        def scenario():
            handle = yield from fs.create("wal")
            writer = LogWriter(handle)
            for i in range(10):
                writer.append(b"record-%d" % i)
            data = yield from handle.read(0, handle.size)
            return list(read_log_records(data))

        records = run(scenario())
        assert records == [b"record-%d" % i for i in range(10)]

    def test_torn_tail_stops_cleanly(self, fs, run):
        def scenario():
            handle = yield from fs.create("wal")
            writer = LogWriter(handle)
            writer.append(b"good-one")
            writer.append(b"good-two")
            data = yield from handle.read(0, handle.size)
            return data

        data = run(scenario())
        torn = data[:-3]  # drop part of the last record
        assert list(read_log_records(torn)) == [b"good-one"]

    def test_corrupt_record_stops(self, fs, run):
        def scenario():
            handle = yield from fs.create("wal")
            writer = LogWriter(handle)
            writer.append(b"first")
            writer.append(b"second")
            writer.append(b"third")
            data = bytearray((yield from handle.read(0, handle.size)))
            return data

        data = run(scenario())
        # Flip a byte inside the second record's payload.
        data[8 + 5 + 8 + 2] ^= 0xFF
        records = list(read_log_records(bytes(data)))
        assert records == [b"first"]

    def test_zeroed_region_stops(self):
        assert list(read_log_records(b"\x00" * 64)) == []


class TestLRUCache:
    def test_get_put(self):
        cache = LRUCache(3, by_bytes=False)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_count_eviction_order(self):
        cache = LRUCache(2, by_bytes=False)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # promote a
        cache.put("c", 3)       # evict b
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_byte_capacity(self):
        cache = LRUCache(100, by_bytes=True)
        cache.put("a", "x", charge=60)
        cache.put("b", "y", charge=60)  # evicts a
        assert cache.get("a") is None
        assert cache.get("b") == "y"
        assert cache.charged == 60

    def test_replace_updates_charge(self):
        cache = LRUCache(100, by_bytes=True)
        cache.put("a", "x", charge=60)
        cache.put("a", "x2", charge=10)
        assert cache.charged == 10

    def test_remove(self):
        cache = LRUCache(10, by_bytes=False)
        cache.put("a", 1)
        cache.remove("a")
        assert cache.get("a") is None

    def test_hit_ratio(self):
        cache = LRUCache(10, by_bytes=False)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.hit_ratio == pytest.approx(0.5)


class TestTableCache:
    def _build(self, fs, run, options, name="db/000001.ldb", uid=1):
        def scenario():
            handle = yield from fs.create(name)
            builder = SSTableBuilder(handle, options.table_format)
            for i in range(100):
                builder.add(b"k%04d" % i, i + 1, VALUE_TYPE_VALUE, b"v")
            info = builder.finish()
            yield from handle.fsync()
            return info

        return run(scenario())

    def test_miss_opens_then_hit_is_free(self, fs, device, run):
        options = Options(max_open_files=8)
        info = self._build(fs, run, options)
        cache = TableCache(fs, options)

        def find():
            return (yield from cache.find_table(1, "db/000001.ldb",
                                                info.base_offset, info.length))

        run(find())
        opens_after_miss = fs.stats.num_opens
        reader = run(find())
        assert fs.stats.num_opens == opens_after_miss  # hit: no reopen
        assert cache.hits == 1 and cache.misses == 1
        assert reader.num_entries == 100

    def test_capacity_counted_in_tables(self, fs, run):
        """§4.3.1: TableCache capacity is a table count, not bytes."""
        options = Options(max_open_files=2)
        cache = TableCache(fs, options)
        infos = []
        for uid in range(3):
            infos.append(self._build(fs, run, options,
                                     name=f"db/{uid:06d}.ldb", uid=uid))

        def find(uid):
            return (yield from cache.find_table(uid, f"db/{uid:06d}.ldb",
                                                infos[uid].base_offset,
                                                infos[uid].length))

        run(find(0))
        run(find(1))
        run(find(2))  # evicts table 0
        assert len(cache) == 2
        misses_before = cache.misses
        run(find(0))  # must re-open (and re-read the index block)
        assert cache.misses == misses_before + 1

    def test_miss_cost_includes_index_read(self, fs, device, run):
        """§2.6: the TableCache miss penalty is the index block read."""
        options = Options(max_open_files=4)
        info = self._build(fs, run, options)
        cache = TableCache(fs, options)
        fs.page_cache.drop_all()  # cold cache: the build left pages warm
        read_before = device.stats.bytes_read

        def find():
            return (yield from cache.find_table(1, "db/000001.ldb",
                                                info.base_offset, info.length))

        run(find())
        assert device.stats.bytes_read > read_before
        assert cache.index_bytes_loaded > 0

    def test_evict(self, fs, run):
        options = Options(max_open_files=4)
        info = self._build(fs, run, options)
        cache = TableCache(fs, options)

        def find():
            return (yield from cache.find_table(1, "db/000001.ldb",
                                                info.base_offset, info.length))

        run(find())
        cache.evict(1)
        misses = cache.misses
        run(find())
        assert cache.misses == misses + 1


class TestBlockCache:
    def test_stores_decoded_blocks_by_bytes(self):
        cache = BlockCache(1000)
        cache.put((1, 0), "block-a", 600)
        cache.put((1, 4096), "block-b", 600)  # evicts block-a
        assert cache.get((1, 0)) is None
        assert cache.get((1, 4096)) == "block-b"
