"""Tests for the YCSB workload generator and client driver."""

import random
from collections import Counter

import pytest

from repro.ycsb import (
    KEY_SIZE,
    WORKLOADS,
    RUN_ORDER,
    WorkloadRunner,
    WorkloadSpec,
    build_key,
    fnv_hash64,
    run_operations,
)
from repro.ycsb.distributions import (
    InsertCounter,
    LatestGenerator,
    ScrambledZipfianGenerator,
    UniformGenerator,
    ZipfianGenerator,
)


class TestKeys:
    def test_key_is_23_bytes(self):
        """§4.1: YCSB keys are 23 bytes."""
        assert len(build_key(0)) == KEY_SIZE
        assert len(build_key(10 ** 12)) == KEY_SIZE

    def test_keys_unique(self):
        keys = {build_key(i) for i in range(10_000)}
        assert len(keys) == 10_000

    def test_fnv_deterministic(self):
        assert fnv_hash64(12345) == fnv_hash64(12345)
        assert fnv_hash64(1) != fnv_hash64(2)

    def test_unhashed_keys_are_ordered(self):
        keys = [build_key(i, hashed=False) for i in range(100)]
        assert keys == sorted(keys)


class TestDistributions:
    def test_uniform_covers_range(self):
        gen = UniformGenerator(100, random.Random(1))
        seen = {gen.next() for _ in range(5000)}
        assert min(seen) >= 0 and max(seen) < 100
        assert len(seen) > 90

    def test_zipfian_is_skewed(self):
        gen = ZipfianGenerator(10_000, rng=random.Random(1))
        counts = Counter(gen.next() for _ in range(20_000))
        top_share = sum(v for k, v in counts.items() if k < 100) / 20_000
        assert top_share > 0.4  # theta=0.99: the head dominates

    def test_zipfian_in_range(self):
        gen = ZipfianGenerator(50, rng=random.Random(2))
        assert all(0 <= gen.next() < 50 for _ in range(2000))

    def test_scrambled_zipfian_spreads_hotspots(self):
        gen = ScrambledZipfianGenerator(10_000, rng=random.Random(1))
        counts = Counter(gen.next() for _ in range(20_000))
        hot = [k for k, _ in counts.most_common(10)]
        # Hot keys are scattered, not clustered at rank 0.
        assert max(hot) > 1000

    def test_latest_prefers_recent(self):
        counter = InsertCounter(10_000)
        gen = LatestGenerator(counter, rng=random.Random(1))
        samples = [gen.next() for _ in range(5000)]
        recent = sum(1 for s in samples if s >= 9000) / len(samples)
        assert recent > 0.5

    def test_latest_tracks_growth(self):
        counter = InsertCounter(100)
        gen = LatestGenerator(counter, rng=random.Random(1))
        for _ in range(900):
            counter.next_key()
        samples = [gen.next() for _ in range(2000)]
        assert max(samples) > 500  # sees the new records

    def test_item_count_must_be_positive(self):
        with pytest.raises(ValueError):
            UniformGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(0)

    def test_rng_is_required(self):
        # No silent fallback to an unseeded random.Random(): that made
        # two identical dbbench invocations diverge (simcheck SIM002).
        with pytest.raises(TypeError):
            UniformGenerator(100)
        with pytest.raises(TypeError):
            ZipfianGenerator(100)
        with pytest.raises(TypeError):
            ScrambledZipfianGenerator(100)
        with pytest.raises(TypeError):
            LatestGenerator(InsertCounter(100))


class TestWorkloadSpecs:
    def test_canonical_mixes(self):
        assert WORKLOADS["a"].read_prop == 0.5
        assert WORKLOADS["b"].read_prop == 0.95
        assert WORKLOADS["c"].read_prop == 1.0
        assert WORKLOADS["d"].request_dist == "latest"
        assert WORKLOADS["e"].scan_prop == 0.95
        assert WORKLOADS["f"].rmw_prop == 0.5
        assert WORKLOADS["load_a"].is_load and WORKLOADS["load_e"].is_load

    def test_run_order_matches_paper(self):
        assert RUN_ORDER == ("load_a", "a", "b", "c", "f", "d",
                             "delete", "load_e", "e")

    def test_bad_proportions_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec("broken", read_prop=0.5).validate()

    def test_with_distribution(self):
        uniform_a = WORKLOADS["a"].with_distribution("uniform")
        assert uniform_a.request_dist == "uniform"
        assert WORKLOADS["a"].request_dist == "zipfian"


class TestWorkloadRunner:
    def test_load_emits_only_inserts(self):
        runner = WorkloadRunner(WORKLOADS["load_a"], 0, value_size=100)
        ops = list(runner.operations(500))
        assert all(kind == "insert" for kind, _k, _v in ops)
        assert len({key for _k, key, _v in ops}) == 500

    def test_mix_close_to_spec(self):
        runner = WorkloadRunner(WORKLOADS["a"], 10_000, seed=3)
        kinds = Counter(kind for kind, _k, _v in runner.operations(4000))
        assert 0.4 < kinds["read"] / 4000 < 0.6
        assert 0.4 < kinds["update"] / 4000 < 0.6

    def test_scan_lengths_bounded(self):
        runner = WorkloadRunner(WORKLOADS["e"], 10_000, seed=3)
        for kind, _key, payload in runner.operations(2000):
            if kind == "scan":
                assert 1 <= payload <= WORKLOADS["e"].max_scan_len

    def test_values_have_requested_size(self):
        runner = WorkloadRunner(WORKLOADS["load_a"], 0, value_size=1024)
        for _kind, _key, value in runner.operations(10):
            assert len(value) == 1024

    def test_deterministic_with_seed(self):
        ops1 = list(WorkloadRunner(WORKLOADS["a"], 1000, seed=9).operations(100))
        ops2 = list(WorkloadRunner(WORKLOADS["a"], 1000, seed=9).operations(100))
        assert ops1 == ops2

    def test_same_ycsb_a_config_twice_is_byte_identical(self):
        # Regression for the unseeded-RNG fallback: the full YCSB-A
        # sequence (load phase + request phase, every kind, key and
        # value) must be equal across two independent constructions.
        def stream():
            counter = InsertCounter(0)
            load = list(WorkloadRunner(WORKLOADS["load_a"], 0, seed=42,
                                       value_size=128,
                                       insert_counter=counter).operations(500))
            request = list(WorkloadRunner(WORKLOADS["a"], 500, seed=42,
                                          value_size=128,
                                          insert_counter=counter).operations(800))
            return load + request

        first, second = stream(), stream()
        assert first == second
        assert len(first) == 1300

    def test_inserts_extend_counter(self):
        counter = InsertCounter(100)
        runner = WorkloadRunner(WORKLOADS["d"], 100, seed=1,
                                insert_counter=counter)
        list(runner.operations(1000))
        assert counter.count > 100

    def test_request_keys_within_loaded_range(self):
        runner = WorkloadRunner(WORKLOADS["c"], 500, seed=2)
        loaded = {build_key(i) for i in range(500)}
        for _kind, key, _v in runner.operations(1000):
            assert key in loaded


class TestClientDriver:
    def test_four_clients_run_all_ops(self, env, fs, run):
        from repro.lsm import LSMEngine, Options
        db = LSMEngine.open_sync(env, fs, Options(
            memtable_size=32 << 10, sstable_size=8 << 10,
            level1_max_bytes=32 << 10), "db")
        runner = WorkloadRunner(WORKLOADS["load_a"], 0, value_size=64)
        ops = list(runner.operations(400))
        recorder = run(run_operations(env, db, ops, num_clients=4))
        assert recorder.count("insert") == 400
        assert db.stats.puts == 400

    def test_latencies_are_positive_virtual_times(self, env, fs, run):
        from repro.lsm import LSMEngine, Options
        db = LSMEngine.open_sync(env, fs, Options(
            memtable_size=32 << 10, sstable_size=8 << 10,
            level1_max_bytes=32 << 10), "db")
        runner = WorkloadRunner(WORKLOADS["load_a"], 0, value_size=64)
        ops = list(runner.operations(100))
        recorder = run(run_operations(env, db, ops, num_clients=2))
        samples = recorder.samples("insert")
        assert len(samples) == 100
        assert all(s >= 0 for s in samples)
        assert any(s > 0 for s in samples)

    def test_rmw_reads_then_writes(self, env, fs, run):
        from repro.lsm import LSMEngine, Options
        db = LSMEngine.open_sync(env, fs, Options(
            memtable_size=32 << 10, sstable_size=8 << 10,
            level1_max_bytes=32 << 10), "db")
        db.put_sync(build_key(0), b"orig")
        ops = [("rmw", build_key(0), b"modified")]
        run(run_operations(env, db, ops, num_clients=1))
        assert db.get_sync(build_key(0)) == b"modified"
        assert db.stats.gets >= 1
